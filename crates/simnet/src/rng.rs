//! Seeded randomness for reproducible simulations.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// A deterministic random source.
///
/// All randomness in a simulation flows through one `SimRng` seeded from a
/// `u64`, so identical seeds reproduce identical runs.
///
/// # Example
///
/// ```
/// use simnet::SimRng;
///
/// let mut a = SimRng::seed_from(7);
/// let mut b = SimRng::seed_from(7);
/// assert_eq!(a.uniform(), b.uniform());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// A uniform sample in `[0, 1)`.
    pub fn uniform(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    /// A uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "below(0) is meaningless");
        self.inner.random_range(0..n)
    }

    /// A uniform integer in `[lo, hi]` inclusive.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "between({lo}, {hi}) has an empty range");
        self.inner.random_range(lo..=hi)
    }

    /// An exponentially distributed sample with the given rate (events per
    /// unit), i.e. mean `1/rate`. Used for Poisson inter-arrival times.
    ///
    /// # Panics
    ///
    /// Panics if `rate` is not strictly positive and finite.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        assert!(
            rate > 0.0 && rate.is_finite(),
            "exponential rate must be positive and finite, got {rate}"
        );
        let u = self.uniform();
        // 1 - u is in (0, 1], so the log is finite.
        -(1.0 - u).ln() / rate
    }

    /// A Bernoulli trial succeeding with probability `p` (clamped to
    /// `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p.clamp(0.0, 1.0)
    }

    /// Derives an independent generator; useful for giving each subsystem
    /// its own stream so changes in one do not perturb the others.
    pub fn fork(&mut self) -> SimRng {
        let seed = self.inner.random::<u64>();
        SimRng::seed_from(seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(42);
        let mut b = SimRng::seed_from(42);
        for _ in 0..100 {
            assert_eq!(a.uniform().to_bits(), b.uniform().to_bits());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        let same = (0..32).filter(|_| a.uniform() == b.uniform()).count();
        assert!(same < 4);
    }

    #[test]
    fn exponential_mean_is_roughly_inverse_rate() {
        let mut rng = SimRng::seed_from(9);
        let rate = 4.0;
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| rng.exponential(rate)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn between_is_inclusive() {
        let mut rng = SimRng::seed_from(3);
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1000 {
            let v = rng.between(0, 3);
            assert!(v <= 3);
            seen_lo |= v == 0;
            seen_hi |= v == 3;
        }
        assert!(seen_lo && seen_hi);
    }

    #[test]
    fn chance_extremes() {
        let mut rng = SimRng::seed_from(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        // out-of-range probabilities are clamped, not a panic
        assert!(rng.chance(2.5));
        assert!(!rng.chance(-1.0));
    }

    #[test]
    fn fork_produces_independent_streams() {
        let mut root = SimRng::seed_from(11);
        let mut child = root.fork();
        // The child stream must not simply mirror the parent.
        let parent_next = root.uniform();
        let child_next = child.uniform();
        assert_ne!(parent_next.to_bits(), child_next.to_bits());
    }
}
