//! Throughput recording and time-series utilities.
//!
//! The paper's phase-1 experiments produce *throughput timelines*:
//! requests served per second, bucketed over the run, with fault injection
//! and recovery instants marked. [`ThroughputRecorder`] builds those
//! timelines; [`TimeSeries`] carries them to the stage-extraction code in
//! the `performability` crate and to the figure renderers.

use crate::time::{SimDuration, SimTime};

/// Records completion events into fixed-width time buckets and converts
/// them to a requests-per-second series.
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime, ThroughputRecorder};
///
/// let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
/// for i in 0..10 {
///     rec.record(SimTime::from_nanos(i * 100_000_000)); // 10 events in 1s
/// }
/// let series = rec.series(SimTime::from_secs(1));
/// assert_eq!(series.points[0].1, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputRecorder {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl ThroughputRecorder {
    /// Creates a recorder with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        ThroughputRecorder {
            bucket,
            counts: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Records one completion at time `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Converts the buckets to a rate series covering `[0, end)`. Buckets
    /// with no events report zero; the (possibly partial) bucket
    /// containing `end` is dropped to avoid a truncation artifact.
    pub fn series(&self, end: SimTime) -> TimeSeries {
        let n = (end.as_nanos() / self.bucket.as_nanos()) as usize;
        let width = self.bucket.as_secs_f64();
        let points = (0..n)
            .map(|i| {
                let count = self.counts.get(i).copied().unwrap_or(0);
                let mid = (i as f64 + 0.5) * width;
                (mid, count as f64 / width)
            })
            .collect();
        TimeSeries { points }
    }
}

/// A sampled `(time seconds, value)` series, e.g. throughput over a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// `(time in seconds, value)` samples in ascending time order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates a series from raw points.
    ///
    /// # Panics
    ///
    /// Panics if the time coordinates are not non-decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "time series points must be in ascending time order"
        );
        TimeSeries { points }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean value of samples with time in `[t0, t1)`. Returns `None` when
    /// the window contains no samples.
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= t0 && t < t1 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Maximum value over the whole series, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Index of the first sample at or after time `t`.
    pub fn index_at(&self, t: f64) -> usize {
        self.points.partition_point(|&(pt, _)| pt < t)
    }

    /// Robust estimate of the per-sample noise variance, from the
    /// median squared first difference: for a piecewise-constant signal
    /// plus i.i.d. noise, `diff[i] = x[i+1] - x[i]` has variance `2σ²`
    /// away from the (rare) level changes, and the median ignores the
    /// changes themselves. Returns 0.0 for fewer than two samples.
    pub fn noise_variance(&self) -> f64 {
        if self.points.len() < 2 {
            return 0.0;
        }
        let mut diffs: Vec<f64> = self
            .points
            .windows(2)
            .map(|w| {
                let d = w[1].1 - w[0].1;
                d * d
            })
            .collect();
        let mid = diffs.len() / 2;
        diffs.sort_by(|a, b| a.partial_cmp(b).expect("finite diffs"));
        diffs[mid] / 2.0
    }

    /// Fits an optimal piecewise-constant model to the series values
    /// (ignoring the time coordinates beyond their order): exact
    /// least-squares dynamic programming over all segmentations with at
    /// most `max_segments` pieces, where each extra piece costs
    /// `penalty` on top of its squared error. Returns the chosen
    /// segments in order; empty for an empty series.
    ///
    /// This is the "blind" change-point detector used by the
    /// stage-segmentation audit: it sees only the sampled values, never
    /// the run log, so its change points are an independent estimate of
    /// where the system's throughput regime actually shifted.
    ///
    /// # Panics
    ///
    /// Panics if `max_segments` is 0 or `penalty` is negative/NaN.
    pub fn piecewise_fit(&self, max_segments: usize, penalty: f64) -> Vec<FitSegment> {
        assert!(max_segments > 0, "need at least one segment");
        assert!(penalty >= 0.0, "penalty must be non-negative");
        let n = self.points.len();
        if n == 0 {
            return Vec::new();
        }
        let kmax = max_segments.min(n);

        // Prefix sums for O(1) segment cost: cost(i, j) is the SSE of
        // fitting one mean to points[i..j].
        let mut s = vec![0.0f64; n + 1];
        let mut s2 = vec![0.0f64; n + 1];
        for (i, &(_, v)) in self.points.iter().enumerate() {
            s[i + 1] = s[i] + v;
            s2[i + 1] = s2[i] + v * v;
        }
        let cost = |i: usize, j: usize| -> f64 {
            let m = (j - i) as f64;
            let sum = s[j] - s[i];
            // Clamp tiny negative round-off so costs stay comparable.
            (s2[j] - s2[i] - sum * sum / m).max(0.0)
        };

        // dp[k][j]: best cost of covering points[0..j] with k+1 segments.
        let mut dp = vec![vec![f64::INFINITY; n + 1]; kmax];
        let mut cut = vec![vec![0usize; n + 1]; kmax];
        for (j, slot) in dp[0].iter_mut().enumerate().skip(1) {
            *slot = cost(0, j);
        }
        for k in 1..kmax {
            let (done, rest) = dp.split_at_mut(k);
            let prev = &done[k - 1];
            for j in (k + 1)..=n {
                let mut best = f64::INFINITY;
                let mut best_i = k;
                for (i, &p) in prev.iter().enumerate().take(j).skip(k) {
                    let c = p + cost(i, j);
                    if c < best {
                        best = c;
                        best_i = i;
                    }
                }
                rest[0][j] = best;
                cut[k][j] = best_i;
            }
        }

        // Model selection: each extra segment must pay for itself.
        let mut best_k = 0;
        let mut best_total = dp[0][n];
        for (k, row) in dp.iter().enumerate().skip(1) {
            let total = row[n] + penalty * k as f64;
            if total < best_total {
                best_total = total;
                best_k = k;
            }
        }

        // Backtrack the cut points.
        let mut bounds = vec![n];
        let mut j = n;
        for k in (1..=best_k).rev() {
            j = cut[k][j];
            bounds.push(j);
        }
        bounds.push(0);
        bounds.reverse();
        bounds
            .windows(2)
            .map(|w| {
                let (i, j) = (w[0], w[1]);
                FitSegment {
                    start: i,
                    end: j,
                    mean: (s[j] - s[i]) / (j - i) as f64,
                }
            })
            .collect()
    }
}

/// One piece of a piecewise-constant fit produced by
/// [`TimeSeries::piecewise_fit`]: sample indices `[start, end)` modeled
/// at the segment's mean value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FitSegment {
    /// First sample index covered.
    pub start: usize,
    /// One past the last sample index covered.
    pub end: usize,
    /// Least-squares level of the segment.
    pub mean: f64,
}

/// Tallies request outcomes for availability accounting.
///
/// Availability in phase 1 is "the percentage of requests served
/// successfully" (§2); this counter tracks the numerator and denominator
/// plus a breakdown of failure causes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvailabilityCounter {
    /// Requests issued by clients.
    pub attempts: u64,
    /// Requests completed successfully.
    pub successes: u64,
    /// Requests whose connection attempt timed out (2 s in the paper).
    pub connect_timeouts: u64,
    /// Requests that connected but did not complete in time (6 s).
    pub request_timeouts: u64,
    /// Requests refused outright (e.g. node down).
    pub refused: u64,
}

impl AvailabilityCounter {
    /// A counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of attempts that succeeded; 1.0 when nothing was
    /// attempted (an idle system is trivially available).
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Total failed requests.
    pub fn failures(&self) -> u64 {
        self.connect_timeouts + self.request_timeouts + self.refused
    }

    /// Folds another counter's tallies into this one.
    pub fn merge(&mut self, other: &AvailabilityCounter) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.connect_timeouts += other.connect_timeouts;
        self.request_timeouts += other.request_timeouts;
        self.refused += other.refused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buckets_by_time() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        rec.record(SimTime::from_nanos(100));
        rec.record(SimTime::from_nanos(999_999_999));
        rec.record(SimTime::from_secs(1));
        rec.record(SimTime::from_secs(3));
        let s = rec.series(SimTime::from_secs(4));
        let values: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, [2.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn series_drops_partial_final_bucket() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        rec.record(SimTime::from_nanos(2_500_000_000));
        let s = rec.series(SimTime::from_nanos(2_500_000_000));
        assert_eq!(s.len(), 2); // bucket containing t=2.5s is dropped
    }

    #[test]
    fn empty_recorder_yields_empty_or_zero_series() {
        let rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        assert_eq!(rec.total(), 0);
        // No time elapsed: no buckets at all.
        assert!(rec.series(SimTime::ZERO).is_empty());
        // Time elapsed but nothing recorded: all-zero buckets.
        let s = rec.series(SimTime::from_secs(3));
        assert_eq!(s.len(), 3);
        assert!(s.points.iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn record_on_exact_bucket_boundary_lands_in_upper_bucket() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        // t = 1.0 s is the first nanosecond of bucket 1, not the last of
        // bucket 0 (buckets are half-open [i, i+1)).
        rec.record(SimTime::from_secs(1));
        rec.record(SimTime::from_nanos(999_999_999));
        let s = rec.series(SimTime::from_secs(2));
        let values: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, [1.0, 1.0]);
    }

    #[test]
    fn series_end_truncates_but_never_loses_recorded_totals() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        for t in [0u64, 1, 2, 3, 4] {
            rec.record(SimTime::from_secs(t));
        }
        // An end inside bucket 2 keeps only the two complete buckets.
        let s = rec.series(SimTime::from_nanos(2_900_000_000));
        assert_eq!(s.len(), 2);
        // An end at an exact boundary keeps everything before it.
        assert_eq!(rec.series(SimTime::from_secs(5)).len(), 5);
        // Truncation is a view: the recorder still holds all samples.
        assert_eq!(rec.total(), 5);
        // An end past the last record pads zeros, not stale data.
        let long = rec.series(SimTime::from_secs(8));
        assert_eq!(long.len(), 8);
        assert_eq!(long.points[7].1, 0.0);
    }

    #[test]
    fn rate_scales_with_bucket_width() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_millis(500));
        rec.record(SimTime::from_nanos(100));
        let s = rec.series(SimTime::from_secs(1));
        assert_eq!(s.points[0].1, 2.0); // 1 event / 0.5s bucket
    }

    #[test]
    fn mean_between_windows() {
        let s = TimeSeries::new(vec![(0.5, 10.0), (1.5, 20.0), (2.5, 30.0)]);
        assert_eq!(s.mean_between(0.0, 2.0), Some(15.0));
        assert_eq!(s.mean_between(5.0, 6.0), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_order_series_panics() {
        TimeSeries::new(vec![(2.0, 1.0), (1.0, 1.0)]);
    }

    #[test]
    fn availability_counts() {
        let mut c = AvailabilityCounter::new();
        assert_eq!(c.availability(), 1.0);
        c.attempts = 10;
        c.successes = 9;
        c.request_timeouts = 1;
        assert!((c.availability() - 0.9).abs() < 1e-12);
        assert_eq!(c.failures(), 1);

        let mut d = AvailabilityCounter::new();
        d.attempts = 10;
        d.successes = 10;
        c.merge(&d);
        assert_eq!(c.attempts, 20);
        assert!((c.availability() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn piecewise_fit_recovers_clean_steps() {
        // 100 for 20 samples, 0 for 15, 70 for 25.
        let mut pts = Vec::new();
        for i in 0..60 {
            let v = if i < 20 {
                100.0
            } else if i < 35 {
                0.0
            } else {
                70.0
            };
            pts.push((i as f64 + 0.5, v));
        }
        let series = TimeSeries::new(pts);
        let segs = series.piecewise_fit(8, 50.0);
        assert_eq!(segs.len(), 3, "segments {segs:?}");
        assert_eq!((segs[0].start, segs[0].end), (0, 20));
        assert_eq!((segs[1].start, segs[1].end), (20, 35));
        assert_eq!((segs[2].start, segs[2].end), (35, 60));
        assert!((segs[0].mean - 100.0).abs() < 1e-9);
        assert!((segs[1].mean - 0.0).abs() < 1e-9);
        assert!((segs[2].mean - 70.0).abs() < 1e-9);
    }

    #[test]
    fn piecewise_fit_ignores_noise_below_the_penalty() {
        // A flat noisy series must come back as one segment.
        let pts: Vec<(f64, f64)> = (0..50)
            .map(|i| (i as f64, 100.0 + if i % 2 == 0 { 3.0 } else { -3.0 }))
            .collect();
        let series = TimeSeries::new(pts);
        let noise = series.noise_variance();
        assert!(noise > 0.0);
        let segs = series.piecewise_fit(8, 2.0 * noise * (50.0f64).ln() * 10.0);
        assert_eq!(segs.len(), 1, "segments {segs:?}");
    }

    #[test]
    fn piecewise_fit_edge_cases() {
        assert!(TimeSeries::default().piecewise_fit(4, 1.0).is_empty());
        let one = TimeSeries::new(vec![(0.0, 5.0)]);
        let segs = one.piecewise_fit(4, 1.0);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mean, 5.0);
        assert_eq!(one.noise_variance(), 0.0);
        // Zero penalty on a stepped series still cannot exceed
        // max_segments.
        let two = TimeSeries::new(vec![(0.0, 1.0), (1.0, 9.0), (2.0, 5.0)]);
        assert_eq!(two.piecewise_fit(2, 0.0).len(), 2);
    }

    #[test]
    fn noise_variance_tracks_alternating_jitter() {
        // Alternating ±d: every first difference is 2d, so the estimate
        // is (2d)²/2 = 2d².
        let d = 3.0;
        let pts: Vec<(f64, f64)> = (0..40)
            .map(|i| (i as f64, if i % 2 == 0 { d } else { -d }))
            .collect();
        let series = TimeSeries::new(pts);
        assert!((series.noise_variance() - 2.0 * d * d).abs() < 1e-9);
    }

    #[test]
    fn index_at_finds_first_sample() {
        let s = TimeSeries::new(vec![(0.5, 1.0), (1.5, 2.0), (2.5, 3.0)]);
        assert_eq!(s.index_at(0.0), 0);
        assert_eq!(s.index_at(1.0), 1);
        assert_eq!(s.index_at(9.0), 3);
    }
}

/// A log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically from 10 µs to ~84 s (1.3× per bucket),
/// which keeps percentile error under 15% across the whole range a
/// request can survive — plenty for availability work, where the
/// interesting boundaries are "fast", "slow", and "timed out".
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut bounds = Vec::new();
        let mut b = 10e-6;
        while b < 100.0 {
            bounds.push(b);
            b *= 1.3;
        }
        let counts = vec![0; bounds.len() + 1];
        LatencyHistogram {
            bounds,
            counts,
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one latency sample, in seconds.
    pub fn record(&mut self, seconds: f64) {
        let seconds = seconds.max(0.0);
        let idx = self.bounds.partition_point(|b| *b < seconds);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += seconds;
        self.max = self.max.max(seconds);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound; the
    /// max for the overflow bucket). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.bounds.len(), other.bounds.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) * 1e-3); // 1ms..1s uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((0.4..0.7).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.9..1.4).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= p99);
        assert!((h.mean() - 0.5005).abs() < 0.01);
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_bucket_reports_the_max() {
        let mut h = LatencyHistogram::new();
        h.record(500.0); // beyond the last bound
        assert_eq!(h.quantile(0.99), 500.0);
        assert_eq!(h.max(), 500.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(0.001);
        b.record(1.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0) >= 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn empty_histogram_quantiles_at_every_q() {
        let h = LatencyHistogram::new();
        for q in [0.0, 0.25, 0.5, 0.95, 0.99, 1.0] {
            assert_eq!(h.quantile(q), 0.0, "q={q}");
        }
        assert_eq!(h.max(), 0.0);
    }

    #[test]
    fn single_sample_histogram_is_that_sample_everywhere() {
        let mut h = LatencyHistogram::new();
        h.record(0.0042);
        assert_eq!(h.count(), 1);
        assert!((h.mean() - 0.0042).abs() < 1e-12);
        assert_eq!(h.max(), 0.0042);
        // Every quantile resolves to the one occupied bucket's bound,
        // which brackets the sample within the 1.3x resolution.
        for q in [0.0, 0.5, 0.99, 1.0] {
            let v = h.quantile(q);
            assert!(
                (0.0042..0.0042 * 1.3).contains(&v),
                "q={q} gave {v}"
            );
        }
        // A zero-latency sample lands in the first bucket.
        let mut z = LatencyHistogram::new();
        z.record(0.0);
        assert_eq!(z.quantile(0.5), 10e-6);
        assert_eq!(z.max(), 0.0);
    }

    #[test]
    fn merging_an_empty_histogram_is_identity() {
        let mut a = LatencyHistogram::new();
        a.record(0.25);
        let before = a.clone();
        a.merge(&LatencyHistogram::new());
        assert_eq!(a, before);
    }
}

#[cfg(test)]
mod latency_proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// merge(a, b) == merge(b, a) for arbitrary sample sets spanning
        /// every bucket (sub-10µs through past-the-last-bound), so
        /// per-stage histograms assembled from time buckets in any order
        /// agree exactly.
        #[test]
        fn merge_is_commutative(
            xs in prop::collection::vec(0u64..60_000_000, 0..40),
            ys in prop::collection::vec(0u64..60_000_000, 0..40),
        ) {
            let fill = |samples: &[u64]| {
                let mut h = LatencyHistogram::new();
                for &us in samples {
                    h.record(us as f64 * 2e-6); // 0 .. 120 s
                }
                h
            };
            let (a, b) = (fill(&xs), fill(&ys));
            let mut ab = a.clone();
            ab.merge(&b);
            let mut ba = b.clone();
            ba.merge(&a);
            prop_assert_eq!(&ab, &ba);
            prop_assert_eq!(ab.count(), a.count() + b.count());
            // The merged quantiles never step outside the union range.
            prop_assert!(ab.quantile(1.0) >= a.quantile(1.0).max(b.quantile(1.0)) - 1e-12);
        }
    }

    #[test]
    fn bucket_resolution_is_bounded() {
        // Adjacent bucket bounds differ by 1.3x: the relative error of a
        // quantile is at most 30%.
        let h = LatencyHistogram::new();
        for w in h.bounds.windows(2) {
            assert!(w[1] / w[0] < 1.3001);
        }
    }
}
