//! Throughput recording and time-series utilities.
//!
//! The paper's phase-1 experiments produce *throughput timelines*:
//! requests served per second, bucketed over the run, with fault injection
//! and recovery instants marked. [`ThroughputRecorder`] builds those
//! timelines; [`TimeSeries`] carries them to the stage-extraction code in
//! the `performability` crate and to the figure renderers.

use crate::time::{SimDuration, SimTime};

/// Records completion events into fixed-width time buckets and converts
/// them to a requests-per-second series.
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime, ThroughputRecorder};
///
/// let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
/// for i in 0..10 {
///     rec.record(SimTime::from_nanos(i * 100_000_000)); // 10 events in 1s
/// }
/// let series = rec.series(SimTime::from_secs(1));
/// assert_eq!(series.points[0].1, 10.0);
/// ```
#[derive(Debug, Clone)]
pub struct ThroughputRecorder {
    bucket: SimDuration,
    counts: Vec<u64>,
}

impl ThroughputRecorder {
    /// Creates a recorder with the given bucket width.
    ///
    /// # Panics
    ///
    /// Panics if `bucket` is zero.
    pub fn new(bucket: SimDuration) -> Self {
        assert!(!bucket.is_zero(), "bucket width must be positive");
        ThroughputRecorder {
            bucket,
            counts: Vec::new(),
        }
    }

    /// The bucket width.
    pub fn bucket(&self) -> SimDuration {
        self.bucket
    }

    /// Records one completion at time `at`.
    pub fn record(&mut self, at: SimTime) {
        let idx = (at.as_nanos() / self.bucket.as_nanos()) as usize;
        if idx >= self.counts.len() {
            self.counts.resize(idx + 1, 0);
        }
        self.counts[idx] += 1;
    }

    /// Total completions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Converts the buckets to a rate series covering `[0, end)`. Buckets
    /// with no events report zero; the (possibly partial) bucket
    /// containing `end` is dropped to avoid a truncation artifact.
    pub fn series(&self, end: SimTime) -> TimeSeries {
        let n = (end.as_nanos() / self.bucket.as_nanos()) as usize;
        let width = self.bucket.as_secs_f64();
        let points = (0..n)
            .map(|i| {
                let count = self.counts.get(i).copied().unwrap_or(0);
                let mid = (i as f64 + 0.5) * width;
                (mid, count as f64 / width)
            })
            .collect();
        TimeSeries { points }
    }
}

/// A sampled `(time seconds, value)` series, e.g. throughput over a run.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TimeSeries {
    /// `(time in seconds, value)` samples in ascending time order.
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    /// Creates a series from raw points.
    ///
    /// # Panics
    ///
    /// Panics if the time coordinates are not non-decreasing.
    pub fn new(points: Vec<(f64, f64)>) -> Self {
        assert!(
            points.windows(2).all(|w| w[0].0 <= w[1].0),
            "time series points must be in ascending time order"
        );
        TimeSeries { points }
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// `true` when the series has no samples.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Mean value of samples with time in `[t0, t1)`. Returns `None` when
    /// the window contains no samples.
    pub fn mean_between(&self, t0: f64, t1: f64) -> Option<f64> {
        let mut sum = 0.0;
        let mut n = 0usize;
        for &(t, v) in &self.points {
            if t >= t0 && t < t1 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            None
        } else {
            Some(sum / n as f64)
        }
    }

    /// Maximum value over the whole series, or `None` if empty.
    pub fn max(&self) -> Option<f64> {
        self.points
            .iter()
            .map(|&(_, v)| v)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f64| a.max(v))))
    }

    /// Index of the first sample at or after time `t`.
    pub fn index_at(&self, t: f64) -> usize {
        self.points.partition_point(|&(pt, _)| pt < t)
    }
}

/// Tallies request outcomes for availability accounting.
///
/// Availability in phase 1 is "the percentage of requests served
/// successfully" (§2); this counter tracks the numerator and denominator
/// plus a breakdown of failure causes.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AvailabilityCounter {
    /// Requests issued by clients.
    pub attempts: u64,
    /// Requests completed successfully.
    pub successes: u64,
    /// Requests whose connection attempt timed out (2 s in the paper).
    pub connect_timeouts: u64,
    /// Requests that connected but did not complete in time (6 s).
    pub request_timeouts: u64,
    /// Requests refused outright (e.g. node down).
    pub refused: u64,
}

impl AvailabilityCounter {
    /// A counter with all tallies at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fraction of attempts that succeeded; 1.0 when nothing was
    /// attempted (an idle system is trivially available).
    pub fn availability(&self) -> f64 {
        if self.attempts == 0 {
            1.0
        } else {
            self.successes as f64 / self.attempts as f64
        }
    }

    /// Total failed requests.
    pub fn failures(&self) -> u64 {
        self.connect_timeouts + self.request_timeouts + self.refused
    }

    /// Folds another counter's tallies into this one.
    pub fn merge(&mut self, other: &AvailabilityCounter) {
        self.attempts += other.attempts;
        self.successes += other.successes;
        self.connect_timeouts += other.connect_timeouts;
        self.request_timeouts += other.request_timeouts;
        self.refused += other.refused;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_buckets_by_time() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        rec.record(SimTime::from_nanos(100));
        rec.record(SimTime::from_nanos(999_999_999));
        rec.record(SimTime::from_secs(1));
        rec.record(SimTime::from_secs(3));
        let s = rec.series(SimTime::from_secs(4));
        let values: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, [2.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn series_drops_partial_final_bucket() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        rec.record(SimTime::from_nanos(2_500_000_000));
        let s = rec.series(SimTime::from_nanos(2_500_000_000));
        assert_eq!(s.len(), 2); // bucket containing t=2.5s is dropped
    }

    #[test]
    fn empty_recorder_yields_empty_or_zero_series() {
        let rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        assert_eq!(rec.total(), 0);
        // No time elapsed: no buckets at all.
        assert!(rec.series(SimTime::ZERO).is_empty());
        // Time elapsed but nothing recorded: all-zero buckets.
        let s = rec.series(SimTime::from_secs(3));
        assert_eq!(s.len(), 3);
        assert!(s.points.iter().all(|&(_, v)| v == 0.0));
    }

    #[test]
    fn record_on_exact_bucket_boundary_lands_in_upper_bucket() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        // t = 1.0 s is the first nanosecond of bucket 1, not the last of
        // bucket 0 (buckets are half-open [i, i+1)).
        rec.record(SimTime::from_secs(1));
        rec.record(SimTime::from_nanos(999_999_999));
        let s = rec.series(SimTime::from_secs(2));
        let values: Vec<f64> = s.points.iter().map(|&(_, v)| v).collect();
        assert_eq!(values, [1.0, 1.0]);
    }

    #[test]
    fn series_end_truncates_but_never_loses_recorded_totals() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_secs(1));
        for t in [0u64, 1, 2, 3, 4] {
            rec.record(SimTime::from_secs(t));
        }
        // An end inside bucket 2 keeps only the two complete buckets.
        let s = rec.series(SimTime::from_nanos(2_900_000_000));
        assert_eq!(s.len(), 2);
        // An end at an exact boundary keeps everything before it.
        assert_eq!(rec.series(SimTime::from_secs(5)).len(), 5);
        // Truncation is a view: the recorder still holds all samples.
        assert_eq!(rec.total(), 5);
        // An end past the last record pads zeros, not stale data.
        let long = rec.series(SimTime::from_secs(8));
        assert_eq!(long.len(), 8);
        assert_eq!(long.points[7].1, 0.0);
    }

    #[test]
    fn rate_scales_with_bucket_width() {
        let mut rec = ThroughputRecorder::new(SimDuration::from_millis(500));
        rec.record(SimTime::from_nanos(100));
        let s = rec.series(SimTime::from_secs(1));
        assert_eq!(s.points[0].1, 2.0); // 1 event / 0.5s bucket
    }

    #[test]
    fn mean_between_windows() {
        let s = TimeSeries::new(vec![(0.5, 10.0), (1.5, 20.0), (2.5, 30.0)]);
        assert_eq!(s.mean_between(0.0, 2.0), Some(15.0));
        assert_eq!(s.mean_between(5.0, 6.0), None);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_order_series_panics() {
        TimeSeries::new(vec![(2.0, 1.0), (1.0, 1.0)]);
    }

    #[test]
    fn availability_counts() {
        let mut c = AvailabilityCounter::new();
        assert_eq!(c.availability(), 1.0);
        c.attempts = 10;
        c.successes = 9;
        c.request_timeouts = 1;
        assert!((c.availability() - 0.9).abs() < 1e-12);
        assert_eq!(c.failures(), 1);

        let mut d = AvailabilityCounter::new();
        d.attempts = 10;
        d.successes = 10;
        c.merge(&d);
        assert_eq!(c.attempts, 20);
        assert!((c.availability() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn index_at_finds_first_sample() {
        let s = TimeSeries::new(vec![(0.5, 1.0), (1.5, 2.0), (2.5, 3.0)]);
        assert_eq!(s.index_at(0.0), 0);
        assert_eq!(s.index_at(1.0), 1);
        assert_eq!(s.index_at(9.0), 3);
    }
}

/// A log-bucketed latency histogram with percentile queries.
///
/// Buckets grow geometrically from 10 µs to ~84 s (1.3× per bucket),
/// which keeps percentile error under 15% across the whole range a
/// request can survive — plenty for availability work, where the
/// interesting boundaries are "fast", "slow", and "timed out".
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    total: u64,
    sum: f64,
    max: f64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        let mut bounds = Vec::new();
        let mut b = 10e-6;
        while b < 100.0 {
            bounds.push(b);
            b *= 1.3;
        }
        let counts = vec![0; bounds.len() + 1];
        LatencyHistogram {
            bounds,
            counts,
            total: 0,
            sum: 0.0,
            max: 0.0,
        }
    }

    /// Records one latency sample, in seconds.
    pub fn record(&mut self, seconds: f64) {
        let seconds = seconds.max(0.0);
        let idx = self.bounds.partition_point(|b| *b < seconds);
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += seconds;
        self.max = self.max.max(seconds);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Mean latency in seconds (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }

    /// Largest sample seen.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The latency at quantile `q` in `[0, 1]` (upper bucket bound; the
    /// max for the overflow bucket). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    pub fn quantile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} out of range");
        if self.total == 0 {
            return 0.0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return if i < self.bounds.len() {
                    self.bounds[i]
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Folds another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        debug_assert_eq!(self.bounds.len(), other.bounds.len());
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

#[cfg(test)]
mod latency_tests {
    use super::*;

    #[test]
    fn quantiles_bracket_the_samples() {
        let mut h = LatencyHistogram::new();
        for i in 1..=1000 {
            h.record(f64::from(i) * 1e-3); // 1ms..1s uniform
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile(0.5);
        assert!((0.4..0.7).contains(&p50), "p50 {p50}");
        let p99 = h.quantile(0.99);
        assert!((0.9..1.4).contains(&p99), "p99 {p99}");
        assert!(h.quantile(1.0) >= p99);
        assert!((h.mean() - 0.5005).abs() < 0.01);
    }

    #[test]
    fn empty_histogram_is_zero_everywhere() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), 0.0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn overflow_bucket_reports_the_max() {
        let mut h = LatencyHistogram::new();
        h.record(500.0); // beyond the last bound
        assert_eq!(h.quantile(0.99), 500.0);
        assert_eq!(h.max(), 500.0);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        a.record(0.001);
        b.record(1.0);
        b.record(2.0);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert!(a.quantile(1.0) >= 2.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_quantile_panics() {
        LatencyHistogram::new().quantile(1.5);
    }

    #[test]
    fn bucket_resolution_is_bounded() {
        // Adjacent bucket bounds differ by 1.3x: the relative error of a
        // quantile is at most 30%.
        let h = LatencyHistogram::new();
        for w in h.bounds.windows(2) {
            assert!(w[1] / w[0] < 1.3001);
        }
    }
}
