//! Simulated time.
//!
//! Time is kept as an integer number of nanoseconds since the start of the
//! simulation. Integer time (rather than `f64`) keeps event ordering exact
//! and the simulation bit-for-bit deterministic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time, in nanoseconds since simulation start.
///
/// # Example
///
/// ```
/// use simnet::{SimDuration, SimTime};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(2);
/// assert_eq!(t.as_secs_f64(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Example
///
/// ```
/// use simnet::SimDuration;
///
/// let d = SimDuration::from_millis(1) + SimDuration::from_micros(500);
/// assert_eq!(d.as_nanos(), 1_500_000);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);
    /// A time later than any event a practical simulation schedules.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Builds a time from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Builds a time from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Seconds since simulation start, as a float (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The elapsed duration since `earlier`, saturating to zero if
    /// `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Builds a duration from nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Builds a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Builds a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Builds a duration from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Builds a duration from fractional seconds, rounding to the nearest
    /// nanosecond. Negative inputs clamp to zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimDuration::ZERO;
        }
        SimDuration((secs * 1e9).round() as u64)
    }

    /// The duration in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// The duration in fractional seconds (for reporting only).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_round_trips() {
        let t = SimTime::from_secs(3) + SimDuration::from_millis(250);
        assert_eq!(t.as_nanos(), 3_250_000_000);
        assert_eq!(t - SimTime::from_secs(3), SimDuration::from_millis(250));
    }

    #[test]
    fn duration_constructors_agree() {
        assert_eq!(SimDuration::from_secs(1), SimDuration::from_millis(1000));
        assert_eq!(SimDuration::from_millis(1), SimDuration::from_micros(1000));
        assert_eq!(SimDuration::from_micros(1), SimDuration::from_nanos(1000));
    }

    #[test]
    fn from_secs_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
    }

    #[test]
    fn display_picks_a_readable_unit() {
        assert_eq!(SimDuration::from_nanos(17).to_string(), "17ns");
        assert_eq!(SimDuration::from_micros(2).to_string(), "2.000us");
        assert_eq!(SimDuration::from_millis(3).to_string(), "3.000ms");
        assert_eq!(SimDuration::from_secs(4).to_string(), "4.000s");
    }
}
