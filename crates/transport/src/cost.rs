//! Per-operation CPU cost models for the communication substrates.
//!
//! Throughput in this reproduction is *emergent*: every protocol action
//! charges CPU time to the node performing it, and a node saturates when
//! the charges exceed wall time. The constants below are calibrated so
//! the five PRESS versions' fault-free peaks land near Table 1 of the
//! paper (4965 / 4965 / 6031 / 6221 / 7058 req/s on four nodes).
//!
//! # Calibration sketch
//!
//! With a 75% forwarding ratio and 8 KB files, the cluster-wide CPU per
//! request is `base + 0.75 × pair`, where `pair` is the cost of the
//! forward (64 B) and file-data (8 KB) exchange:
//!
//! | version | pair (µs) | total (µs) | peak = 4/total (req/s) | paper | measured |
//! |---|---|---|---|---|---|
//! | TCP     | ≈336 | ≈806 | ≈4963 | 4965 | 4962 |
//! | VIA-0   | ≈166 | ≈661 | ≈6050 | 6031 | 6049 |
//! | VIA-3   | ≈140 | ≈642 | ≈6232 | 6221 | 6232 |
//! | VIA-5   | ≈39  | ≈566 | ≈7070 | 7058 | 7073 |
//!
//! (`base` ≈ 534 µs of per-request HTTP work lives in the PRESS
//! configuration; it is identical across versions, exactly as the same
//! server code runs over both substrates in the paper.)

use simnet::SimDuration;

/// CPU costs charged by a transport, in nanoseconds unless noted.
///
/// Use the constructors ([`CostModel::tcp`], [`CostModel::via0`],
/// [`CostModel::via3`], [`CostModel::via5`]) for the calibrated presets.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Fixed send-path cost per message (syscall + protocol, or
    /// descriptor post + doorbell).
    pub send_fixed: SimDuration,
    /// Fixed receive-path cost per message.
    pub recv_fixed: SimDuration,
    /// Receiver interrupt cost per message (zero when polling).
    pub interrupt: SimDuration,
    /// Poll cost per received message (polling receive versions).
    pub poll: SimDuration,
    /// Copy cost per byte on the send side, nanoseconds.
    pub copy_ns_per_byte_send: f64,
    /// Copy cost per byte on the receive side, nanoseconds.
    pub copy_ns_per_byte_recv: f64,
    /// Checksum cost per byte charged at *each* side (TCP software
    /// checksums; VIA hardware CRCs are free to the host).
    pub checksum_ns_per_byte: f64,
    /// ACK processing cost per data segment, charged at each side (TCP).
    pub ack_cost: SimDuration,
    /// Credit-update processing per update, charged at each side (VIA).
    pub credit_cost: SimDuration,
    /// Cost to pin one 4 KB page (VIA memory registration).
    pub pin_page: SimDuration,
    /// Cost to unpin one 4 KB page.
    pub unpin_page: SimDuration,
    /// When `true`, bulk ([`crate::MsgClass::is_bulk`]) payload bytes are
    /// transferred without copies at either end (VIA-PRESS-5 zero-copy).
    pub zero_copy_bulk: bool,
}

impl CostModel {
    /// Kernel TCP over the cLAN: heavyweight per-message path, software
    /// checksums, a copy on each side and interrupt-driven reception.
    pub fn tcp() -> Self {
        CostModel {
            send_fixed: SimDuration::from_nanos(36_000),
            recv_fixed: SimDuration::from_nanos(36_000),
            interrupt: SimDuration::from_nanos(14_000),
            poll: SimDuration::ZERO,
            copy_ns_per_byte_send: 6.2,
            copy_ns_per_byte_recv: 6.2,
            checksum_ns_per_byte: 2.5,
            ack_cost: SimDuration::from_nanos(5_000),
            credit_cost: SimDuration::ZERO,
            pin_page: SimDuration::ZERO,
            unpin_page: SimDuration::ZERO,
            zero_copy_bulk: false,
        }
    }

    /// VIA with regular user-space messages and interrupt-driven
    /// reception (VIA-PRESS-0).
    pub fn via0() -> Self {
        CostModel {
            send_fixed: SimDuration::from_nanos(8_000),
            recv_fixed: SimDuration::from_nanos(8_000),
            interrupt: SimDuration::from_nanos(14_000),
            poll: SimDuration::ZERO,
            copy_ns_per_byte_send: 6.2,
            copy_ns_per_byte_recv: 6.2,
            checksum_ns_per_byte: 0.0,
            ack_cost: SimDuration::ZERO,
            credit_cost: SimDuration::from_nanos(2_000),
            pin_page: SimDuration::from_nanos(3_000),
            unpin_page: SimDuration::from_nanos(2_000),
            zero_copy_bulk: false,
        }
    }

    /// VIA with remote memory writes and polling in all messages
    /// (VIA-PRESS-3): no receiver interrupts.
    pub fn via3() -> Self {
        CostModel {
            interrupt: SimDuration::ZERO,
            poll: SimDuration::from_nanos(1_000),
            ..CostModel::via0()
        }
    }

    /// VIA-PRESS-3 plus zero-copy file transfers (VIA-PRESS-5): bulk
    /// payloads move by DMA from pinned file-cache pages and are served
    /// to clients straight out of the communication buffer.
    pub fn via5() -> Self {
        CostModel {
            zero_copy_bulk: true,
            ..CostModel::via3()
        }
    }

    /// Send-side CPU for one message of `bytes` payload bytes.
    pub fn send_cost(&self, bytes: u32, bulk: bool) -> SimDuration {
        let mut ns = self.send_fixed.as_nanos() as f64;
        if !(bulk && self.zero_copy_bulk) {
            ns += f64::from(bytes) * self.copy_ns_per_byte_send;
        }
        ns += f64::from(bytes) * self.checksum_ns_per_byte;
        SimDuration::from_nanos(ns as u64)
    }

    /// Receive-side CPU for one message of `bytes` payload bytes.
    pub fn recv_cost(&self, bytes: u32, bulk: bool) -> SimDuration {
        let mut ns =
            (self.recv_fixed + self.interrupt + self.poll).as_nanos() as f64;
        if !(bulk && self.zero_copy_bulk) {
            ns += f64::from(bytes) * self.copy_ns_per_byte_recv;
        }
        ns += f64::from(bytes) * self.checksum_ns_per_byte;
        SimDuration::from_nanos(ns as u64)
    }

    /// Cost to pin `pages` 4 KB pages.
    pub fn pin_cost(&self, pages: u32) -> SimDuration {
        self.pin_page * u64::from(pages)
    }

    /// Cost to unpin `pages` 4 KB pages.
    pub fn unpin_cost(&self, pages: u32) -> SimDuration {
        self.unpin_page * u64::from(pages)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The calibration table from the module docs, re-derived in code so
    /// a constant change that breaks Table 1 fails loudly.
    #[test]
    fn analytic_pair_costs_match_calibration() {
        let fwd = 64u32;
        let file = 8192u32;

        let pair = |m: &CostModel, acks: f64, credits: f64| -> f64 {
            let s = m.send_cost(fwd, false).as_nanos()
                + m.send_cost(file, true).as_nanos()
                + m.recv_cost(fwd, false).as_nanos()
                + m.recv_cost(file, true).as_nanos();
            s as f64
                + acks * 2.0 * m.ack_cost.as_nanos() as f64 * 2.0
                + credits * m.credit_cost.as_nanos() as f64 * 2.0
        };

        // TCP: 2 data segments, each acked (cost at both sides).
        let tcp_us = pair(&CostModel::tcp(), 1.0, 0.0) / 1000.0;
        assert!((325.0..350.0).contains(&tcp_us), "tcp pair = {tcp_us}us");

        let via0_us = pair(&CostModel::via0(), 0.0, 1.0) / 1000.0;
        assert!((160.0..175.0).contains(&via0_us), "via0 pair = {via0_us}us");

        let via3_us = pair(&CostModel::via3(), 0.0, 1.0) / 1000.0;
        assert!((135.0..148.0).contains(&via3_us), "via3 pair = {via3_us}us");

        let via5_us = pair(&CostModel::via5(), 0.0, 1.0) / 1000.0;
        assert!((34.0..44.0).contains(&via5_us), "via5 pair = {via5_us}us");

        // Ordering must match the paper: TCP slowest, VIA-5 fastest.
        assert!(tcp_us > via0_us && via0_us > via3_us && via3_us > via5_us);
    }

    #[test]
    fn zero_copy_only_applies_to_bulk() {
        let m = CostModel::via5();
        let bulk = m.send_cost(8192, true);
        let not_bulk = m.send_cost(8192, false);
        assert!(bulk < not_bulk);
        // Small control messages cost the same either way modulo copies.
        assert_eq!(m.send_cost(0, true), m.send_cost(0, false));
    }

    #[test]
    fn interrupt_vs_poll_distinguishes_via0_and_via3() {
        let v0 = CostModel::via0().recv_cost(64, false);
        let v3 = CostModel::via3().recv_cost(64, false);
        assert!(v0 > v3, "interrupt reception must cost more than polling");
    }

    #[test]
    fn tcp_checksums_scale_with_size() {
        let m = CostModel::tcp();
        let small = m.send_cost(64, false);
        let big = m.send_cost(65536, false);
        let delta_ns = (big - small).as_nanos() as f64;
        let expected = (65536.0 - 64.0) * (6.2 + 2.5);
        assert!((delta_ns - expected).abs() / expected < 0.01);
    }

    #[test]
    fn pin_costs_scale_with_pages() {
        let m = CostModel::via5();
        assert_eq!(m.pin_cost(2), m.pin_cost(1) * 2);
        assert_eq!(m.unpin_cost(4), m.unpin_cost(1) * 4);
    }
}
