//! Protocol models of the two intra-cluster communication substrates the
//! paper compares: kernel-style **TCP** and user-level **VIA**.
//!
//! Both substrates implement the [`Substrate`] trait: the application
//! (PRESS) calls [`Substrate::send`]; the composition layer feeds frames
//! and timers back in; every call returns [`Effect`]s (frames to
//! transmit, timers to arm, CPU to charge, upcalls to the application).
//! The protocol cores are therefore pure state machines, unit-testable
//! without an event loop.
//!
//! The substrates differ exactly along the axes the paper identifies:
//!
//! | | [`tcp::TcpStack`] | [`via::ViaNic`] |
//! |---|---|---|
//! | Abstraction | byte stream (framing on top) | messages |
//! | Loss reaction | silent retransmit, ~13 min abort | fail-stop: connection breaks |
//! | Buffers | dynamic kernel skbufs (can fail) | pre-allocated, registered/pinned |
//! | Copies | both sides + interrupt | single/zero copy, polling |
//! | Bad pointer | synchronous `EFAULT` | async completion error (fatal) |
//! | Bad offset/size | corrupts the rest of the stream | error at one (or both, RDMA) ends |

pub mod api;
pub mod cost;
pub mod substrate_impl;
pub mod tcp;
pub mod via;

pub use api::{
    BreakReason, CallParams, Effect, Effects, ErrorSite, MsgClass, PinFailed, PtrParam,
    SendInterposer, SendStatus, Substrate, TimerKey, TimerKind, Upcall, WirePayload,
};
pub use cost::CostModel;
pub use substrate_impl::SubstrateImpl;
pub use tcp::{TcpConfig, TcpStack};
pub use via::{ViaConfig, ViaMode, ViaNic};
