//! The substrate-neutral API between the application and the transports.
//!
//! The application sees one interface ([`Substrate`]) regardless of
//! whether TCP or VIA is underneath — just as PRESS has one code
//! structure with "VI end-points replaced by TCP sockets" (§3). Every
//! behavioural difference between the substrates is expressed through the
//! *results*: synchronous [`SendStatus`] values, asynchronous [`Upcall`]s
//! and when/whether connections break.

use simnet::fabric::{Frame, LossReason, NodeId};
use simnet::{SimDuration, SimTime};

use crate::tcp::TcpSegment;
use crate::via::ViaPacket;

/// What a transport puts on the wire: either a TCP segment or a VIA
/// packet. The fabric treats payloads opaquely.
#[derive(Debug, Clone, PartialEq)]
pub enum WirePayload<M> {
    /// A TCP segment (possibly ACK-only or RST).
    Tcp(TcpSegment<M>),
    /// A VIA packet (data, credit update, or connection management).
    Via(ViaPacket<M>),
}

/// Classifies application messages so fault interposition can target a
/// particular call site (e.g. mangle only file-data sends) and so cost
/// models can treat bulk data differently from control traffic.
///
/// The `Ord` derive (declaration order) gives fault specs a total
/// order, which the campaign layer uses to break same-instant ties
/// deterministically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MsgClass {
    /// A forwarded HTTP request (small).
    Forward,
    /// File contents travelling from service node to initial node (bulk).
    FileData,
    /// Cooperative-cache membership broadcast (small).
    CacheUpdate,
    /// Heartbeat (small, TCP-PRESS-HB only).
    Heartbeat,
    /// Cluster membership / rejoin control traffic (small).
    Control,
}

impl MsgClass {
    /// Whether this class carries bulk data (eligible for zero-copy).
    pub fn is_bulk(self) -> bool {
        matches!(self, MsgClass::FileData)
    }

    /// Short stable name for trace attributes and logs.
    pub fn label(self) -> &'static str {
        match self {
            MsgClass::Forward => "forward",
            MsgClass::FileData => "file-data",
            MsgClass::CacheUpdate => "cache-update",
            MsgClass::Heartbeat => "heartbeat",
            MsgClass::Control => "control",
        }
    }
}

/// The (possibly corrupted) data-pointer argument of a send/receive call.
///
/// Models the paper's §4.3 bad-parameter faults: NULL pointers and
/// off-by-N pointers with N in `[0, 100]` bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PtrParam {
    /// A correct pointer.
    #[default]
    Valid,
    /// NULL.
    Null,
    /// Offset from the correct address by `n` bytes.
    OffBy(i32),
}

/// Parameters of one communication call, as seen *after* any fault
/// interposition. A clean call is `CallParams::default()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CallParams {
    /// The data pointer argument.
    pub ptr: PtrParam,
    /// Bytes added to (or, negative, removed from) the correct length.
    pub size_delta: i32,
}

impl CallParams {
    /// `true` when no parameter was mangled.
    pub fn is_clean(&self) -> bool {
        *self == CallParams::default()
    }
}

/// Interposition hook between the application and the communication
/// library — the mechanism Mendosus uses to inject bad-parameter faults
/// (§4.3: "interposing a software layer between the application and the
/// normal communication library").
pub trait SendInterposer {
    /// Possibly corrupts the parameters of one send call.
    fn mangle(&mut self, now: SimTime, class: MsgClass, params: CallParams) -> CallParams;
}

/// An interposer that never changes anything (fault-free operation).
#[derive(Debug, Clone, Copy, Default)]
pub struct CleanInterposer;

impl SendInterposer for CleanInterposer {
    fn mangle(&mut self, _now: SimTime, _class: MsgClass, params: CallParams) -> CallParams {
        params
    }
}

/// Synchronous result of [`Substrate::send`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendStatus {
    /// The message was accepted for (eventual) transmission.
    Accepted,
    /// The send buffer / credit window is full; the caller must stop
    /// sending to this peer until [`Upcall::Writable`] arrives. This is
    /// how a blocking socket manifests to the simulation.
    WouldBlock,
    /// Synchronous error: the kernel rejected the buffer address
    /// (`EFAULT`). Only TCP detects NULL pointers synchronously (§5.5).
    SyncError,
    /// There is no usable connection to the peer.
    NotConnected,
}

/// Kinds of timers a transport can arm.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimerKind {
    /// TCP retransmission timeout for a connection.
    Retransmit,
    /// Retry loop while kernel memory allocation is failing.
    AllocRetry,
    /// Connection-establishment retry.
    Connect,
}

impl TimerKind {
    /// Number of timer kinds, for dense per-connection indexing.
    pub const COUNT: usize = 3;

    /// Dense index of this kind in `[0, TimerKind::COUNT)`.
    #[inline]
    pub fn idx(self) -> usize {
        match self {
            TimerKind::Retransmit => 0,
            TimerKind::AllocRetry => 1,
            TimerKind::Connect => 2,
        }
    }
}

/// Identifies a scheduled transport timer. Transports never *require*
/// cancellation — stale firings are detected by comparing `gen` against
/// the connection's current generation — but a composition layer may use
/// the `gen` stamps to cancel superseded timers before they transit the
/// event queue (see `Engine::schedule_cancellable`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimerKey {
    /// The node whose transport armed the timer.
    pub node: NodeId,
    /// The peer the timer concerns.
    pub peer: NodeId,
    /// The connection the timer concerns (0 for transports with one
    /// connection per peer).
    pub conn: u64,
    /// What the timer is for.
    pub kind: TimerKind,
    /// Generation stamp for staleness detection.
    pub gen: u64,
}

/// Error returned by [`Substrate::register_pages`] when memory cannot
/// be pinned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PinFailed;

impl std::fmt::Display for PinFailed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("memory-locking request rejected")
    }
}

impl std::error::Error for PinFailed {}

/// Why a connection broke.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakReason {
    /// The NIC reported a transmission fault (VIA fail-stop).
    NicError(LossReason),
    /// TCP gave up after retransmitting for the abort interval.
    RetransmitTimeout,
    /// The peer answered with a reset (e.g. it restarted).
    PeerReset,
    /// The receiver detected stream corruption (framing error).
    StreamCorrupt,
    /// The local application asked for a teardown.
    LocalClose,
}

impl BreakReason {
    /// Short stable name for trace attributes and logs.
    pub fn label(self) -> &'static str {
        match self {
            BreakReason::NicError(_) => "nic-error",
            BreakReason::RetransmitTimeout => "retransmit-timeout",
            BreakReason::PeerReset => "peer-reset",
            BreakReason::StreamCorrupt => "stream-corrupt",
            BreakReason::LocalClose => "local-close",
        }
    }
}

/// Where a completion error was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorSite {
    /// On the node that issued the bad call.
    Local,
    /// On the remote node (bad RDMA writes land remotely).
    Remote,
}

/// Asynchronous notifications from the transport to the application.
#[derive(Debug, Clone, PartialEq)]
pub enum Upcall<M> {
    /// A complete application message arrived from `peer`.
    Deliver {
        /// Sending node.
        peer: NodeId,
        /// The message.
        msg: M,
        /// Message class as tagged by the sender.
        class: MsgClass,
        /// Size the sender declared.
        bytes: u32,
    },
    /// A previously full send path has space again.
    Writable {
        /// The peer that can be written to again.
        peer: NodeId,
    },
    /// The connection to `peer` is gone.
    ConnBroken {
        /// The peer whose connection broke.
        peer: NodeId,
        /// Why.
        reason: BreakReason,
    },
    /// A connection to `peer` completed establishment.
    Connected {
        /// The newly connected peer.
        peer: NodeId,
    },
    /// A communication descriptor completed with an error status. VIA
    /// reports bad parameters this way (asynchronously); PRESS treats
    /// these as fatal and fail-fasts (§5.5).
    CompletionError {
        /// The peer involved.
        peer: NodeId,
        /// Whether the error was detected locally or arrived from the
        /// remote end of an RDMA operation.
        site: ErrorSite,
        /// Human-readable cause, for reports.
        cause: &'static str,
    },
}

/// Side effects requested by a transport call.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect<M> {
    /// Hand a frame to the fabric.
    Transmit(Frame<WirePayload<M>>),
    /// Arm a timer; the composition layer must call
    /// [`Substrate::timer_fired`] with `key` at time `at`.
    SetTimer {
        /// When the timer fires.
        at: SimTime,
        /// Identity passed back on firing.
        key: TimerKey,
    },
    /// Charge protocol CPU time to this node (copies, interrupts,
    /// descriptor handling...). The composition layer adds it to the
    /// node's [`simnet::CpuMeter`].
    ChargeCpu(SimDuration),
    /// Notify the application.
    Upcall(Upcall<M>),
    /// Record a structured trace event. Only emitted after
    /// [`Substrate::set_trace`] enabled tracing, so the fault-free
    /// benchmark path never constructs one; the composition layer
    /// forwards it to the run's [`telemetry::TraceSink`].
    Trace(telemetry::TraceEvent),
    /// Record a causal attribution event (retransmit/abort/freeze
    /// evidence). Only emitted after [`Substrate::set_attr`] enabled
    /// attribution; the composition layer applies it to the run's
    /// [`telemetry::AttrState`] in event order.
    Attr(telemetry::AttrEvent),
}

/// Convenience alias: the buffer all transport entry points append
/// effects to.
pub type Effects<M> = Vec<Effect<M>>;

/// One intra-cluster communication endpoint (all connections of one node).
///
/// Implementations: [`crate::tcp::TcpStack`] and [`crate::via::ViaNic`].
pub trait Substrate<M: Clone> {
    /// The node this endpoint lives on.
    fn node(&self) -> NodeId;

    /// Starts (or restarts) connection establishment towards `peer`.
    fn open(&mut self, now: SimTime, peer: NodeId, out: &mut Effects<M>);

    /// Tears down the connection to `peer` locally, without an upcall
    /// and without notifying the peer (PRESS closes connections to nodes
    /// it excludes from the cluster).
    fn close(&mut self, peer: NodeId);

    /// Whether a usable connection to `peer` exists.
    fn is_connected(&self, peer: NodeId) -> bool;

    /// Registers (pins) `pages` 4 KB pages for communication use.
    ///
    /// TCP does not pin memory, so the default implementation always
    /// succeeds without charging anything; VIA overrides this with real
    /// accounting (and the Mendosus memory-locking fault).
    ///
    /// # Errors
    ///
    /// Returns [`PinFailed`] when the pinnable-memory ceiling would be
    /// exceeded.
    fn register_pages(
        &mut self,
        _now: SimTime,
        _pages: u32,
        _out: &mut Effects<M>,
    ) -> Result<(), PinFailed> {
        Ok(())
    }

    /// Releases pages previously registered with
    /// [`Substrate::register_pages`]. Default: no-op.
    fn deregister_pages(&mut self, _now: SimTime, _pages: u32, _out: &mut Effects<M>) {}

    /// Sends one application message.
    #[allow(clippy::too_many_arguments)]
    fn send(
        &mut self,
        now: SimTime,
        peer: NodeId,
        class: MsgClass,
        msg: M,
        bytes: u32,
        params: CallParams,
        out: &mut Effects<M>,
    ) -> SendStatus;

    /// A frame addressed to this node arrived from the fabric.
    fn frame_arrived(&mut self, now: SimTime, frame: Frame<WirePayload<M>>, out: &mut Effects<M>);

    /// A frame this node transmitted was lost; `reason` says why. TCP
    /// ignores this (loss is signalled end-to-end); VIA's fail-stop model
    /// breaks the connection.
    fn transmit_failed(
        &mut self,
        now: SimTime,
        peer: NodeId,
        reason: LossReason,
        out: &mut Effects<M>,
    );

    /// A timer armed via [`Effect::SetTimer`] fired.
    fn timer_fired(&mut self, now: SimTime, key: TimerKey, out: &mut Effects<M>);

    /// Pauses or resumes application-level consumption. While paused
    /// (the process is SIGSTOPed), arriving messages are held and the
    /// peer's flow control (zero window / credits) eventually stalls
    /// senders.
    fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>);

    /// Sets whether kernel memory (skbuf) allocation currently fails on
    /// this node. Only TCP allocates kernel memory per packet; VIA
    /// pre-allocates and is immune (§5.4).
    fn set_alloc_fail(&mut self, failing: bool);

    /// Sets whether memory-pinning requests currently fail on this node.
    /// Only VIA pins memory; see [`crate::via::ViaNic::register_pages`].
    fn set_pin_fail(&mut self, failing: bool);

    /// The application process restarted: all endpoint state is lost.
    /// Peers discover this through resets on their next transmission.
    fn restart(&mut self, now: SimTime);

    /// Enables or disables structured tracing. While enabled, the
    /// transport appends [`Effect::Trace`] events (retransmissions,
    /// aborts, descriptor errors, connection breaks...) alongside its
    /// ordinary effects. Default: ignored (never traces).
    fn set_trace(&mut self, _enabled: bool) {}

    /// Enables or disables causal attribution. While enabled, the
    /// transport appends [`Effect::Attr`] evidence (retransmissions,
    /// aborts) alongside its ordinary effects. Default: ignored
    /// (never attributes).
    fn set_attr(&mut self, _enabled: bool) {}

    /// Dumps this endpoint's lifetime counters into a metrics
    /// registry (names like `tcp.retransmissions`); counters from all
    /// nodes of a cluster accumulate into the same keys. Default:
    /// contributes nothing.
    fn export_metrics(&self, _reg: &mut telemetry::MetricsRegistry) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_params_are_clean() {
        assert!(CallParams::default().is_clean());
        let bad = CallParams {
            ptr: PtrParam::Null,
            size_delta: 0,
        };
        assert!(!bad.is_clean());
        let bad_size = CallParams {
            ptr: PtrParam::Valid,
            size_delta: 7,
        };
        assert!(!bad_size.is_clean());
    }

    #[test]
    fn clean_interposer_is_identity() {
        let mut i = CleanInterposer;
        let p = CallParams {
            ptr: PtrParam::OffBy(3),
            size_delta: -1,
        };
        assert_eq!(i.mangle(SimTime::ZERO, MsgClass::FileData, p), p);
    }

    #[test]
    fn only_file_data_is_bulk() {
        assert!(MsgClass::FileData.is_bulk());
        for class in [
            MsgClass::Forward,
            MsgClass::CacheUpdate,
            MsgClass::Heartbeat,
            MsgClass::Control,
        ] {
            assert!(!class.is_bulk());
        }
    }
}
