//! Kernel-style TCP model.
//!
//! Captures the TCP properties the paper's results depend on:
//!
//! * **Byte-stream abstraction.** Application messages are framed on a
//!   stream; a bad pointer or size corrupts the framing of *everything
//!   after the fault* (§1, §5.5). The receiver discovers the corruption
//!   as a framing error and resets the connection.
//! * **Timeout and retry.** Packet loss is assumed transient: segments
//!   are retransmitted with exponential backoff and the connection only
//!   aborts after [`TcpConfig::abort_after`] (~13 minutes), which makes
//!   TCP fault *detection* far too slow to drive reconfiguration (§5.2).
//! * **Dynamic kernel memory.** Every packet needs an skbuf; when
//!   allocation fails, outgoing segments queue in the kernel and
//!   incoming packets are dropped (§4.2, §5.4).
//! * **Synchronous `EFAULT`.** A NULL data pointer is caught by the
//!   kernel at the system-call boundary (§5.5).
//! * **Connections are sockets, not peers.** A restarted process
//!   connects on a *new* socket while peers may still hold stalled old
//!   connections to its previous life; the old ones die only when a
//!   retransmission reaches the rebooted kernel and draws a reset. This
//!   coexistence is what produces the paper's failed-rejoin timing race
//!   (§5.3).
//!
//! The implementation is a pure state machine: every entry point appends
//! [`Effect`]s to a caller-provided buffer.

use std::collections::BTreeMap;

use simnet::fabric::{Frame, LossReason, NodeId};
use simnet::{SimDuration, SimTime};

use crate::api::{
    BreakReason, CallParams, Effect, Effects, MsgClass, PtrParam, SendStatus, Substrate, TimerKey,
    TimerKind, Upcall, WirePayload,
};
use crate::cost::CostModel;

/// Tunable TCP parameters. Defaults approximate a Linux 2.2-era stack on
/// the paper's test-bed.
#[derive(Debug, Clone)]
pub struct TcpConfig {
    /// Maximum payload bytes per segment.
    pub mss: u32,
    /// Wire overhead per segment (IP + TCP headers).
    pub header_bytes: u32,
    /// Send-buffer size in bytes; sends beyond this return
    /// [`SendStatus::WouldBlock`].
    pub send_buffer: u32,
    /// Initial retransmission timeout.
    pub initial_rto: SimDuration,
    /// Retransmission timeout ceiling.
    pub max_rto: SimDuration,
    /// Time a segment may remain unacknowledged before the connection is
    /// aborted. The paper observes "on the order of 10-15 minutes".
    pub abort_after: SimDuration,
    /// Retry interval while kernel memory allocation is failing.
    pub alloc_retry: SimDuration,
    /// SYN retransmission interval.
    pub connect_retry: SimDuration,
    /// Give up on connection establishment after this long.
    pub connect_give_up: SimDuration,
}

impl Default for TcpConfig {
    fn default() -> Self {
        TcpConfig {
            mss: 8192,
            header_bytes: 40,
            send_buffer: 32 * 1024,
            initial_rto: SimDuration::from_millis(200),
            max_rto: SimDuration::from_secs(64),
            abort_after: SimDuration::from_secs(780),
            alloc_retry: SimDuration::from_millis(10),
            connect_retry: SimDuration::from_secs(1),
            connect_give_up: SimDuration::from_secs(12),
        }
    }
}

/// A record of one framed application message on the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct MsgRec<M> {
    /// Stream offset of the first byte.
    pub start: u64,
    /// Stream offset one past the last byte.
    pub end: u64,
    /// The message (simulation carries it out of band; on real hardware
    /// these bytes are the stream content).
    pub msg: M,
    /// Message class tag.
    pub class: MsgClass,
    /// Declared payload size.
    pub bytes: u32,
    /// Whether a bad-parameter fault garbled this message's bytes (and
    /// therefore the framing of everything after it).
    pub poisoned: bool,
}

/// Discriminates segment roles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SegKind {
    /// Connection request.
    Syn,
    /// Connection accept.
    SynAck,
    /// Data and/or acknowledgement.
    Data,
    /// Hard reset.
    Rst,
}

/// One TCP segment on the wire.
#[derive(Debug, Clone, PartialEq)]
pub struct TcpSegment<M> {
    /// Segment role.
    pub kind: SegKind,
    /// The connection (socket pair) this segment belongs to; assigned by
    /// the connection initiator, echoed by resets.
    pub conn: u64,
    /// First stream byte carried (data segments).
    pub seq: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Cumulative acknowledgement.
    pub ack: u64,
    /// Advertised receive window: `false` means zero window (the peer
    /// application stopped consuming).
    pub window_open: bool,
    /// Messages whose final byte lies within this segment.
    pub msgs: Vec<MsgRec<M>>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    SynSent,
    Established,
}

#[derive(Debug)]
struct Conn<M> {
    id: u64,
    state: ConnState,
    opened_at: SimTime,
    // --- send side ---
    next_seq: u64,
    snd_una: u64,
    snd_sent: u64,
    retained: BTreeMap<u64, MsgRec<M>>,
    poisoned_from: Option<u64>,
    first_unacked_at: Option<SimTime>,
    rto: SimDuration,
    timer_gen: u64,
    rtx_armed: bool,
    rtx_at: SimTime,
    blocked: bool,
    alloc_waiting: bool,
    peer_window_open: bool,
    // --- receive side ---
    rcv_next: u64,
    delivered_up_to: u64,
    ooo: Vec<(u64, u64)>,
    pending_msgs: BTreeMap<u64, MsgRec<M>>,
}

impl<M> Conn<M> {
    fn new(id: u64, now: SimTime, state: ConnState, rto: SimDuration) -> Self {
        Conn {
            id,
            state,
            opened_at: now,
            next_seq: 0,
            snd_una: 0,
            snd_sent: 0,
            retained: BTreeMap::new(),
            poisoned_from: None,
            first_unacked_at: None,
            rto,
            timer_gen: 0,
            rtx_armed: false,
            rtx_at: SimTime::ZERO,
            blocked: false,
            alloc_waiting: false,
            peer_window_open: true,
            rcv_next: 0,
            delivered_up_to: 0,
            ooo: Vec::new(),
            pending_msgs: BTreeMap::new(),
        }
    }

    fn buffered(&self) -> u64 {
        self.next_seq - self.snd_una
    }
}

/// Counters for observing stack behaviour in tests and reports.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TcpStats {
    /// Data segments transmitted (including retransmissions).
    pub data_segments_sent: u64,
    /// Retransmitted segments.
    pub retransmissions: u64,
    /// Messages delivered to the application.
    pub messages_delivered: u64,
    /// Connections aborted by the retransmission deadline.
    pub aborts: u64,
    /// Framing errors detected (stream corruption).
    pub framing_errors: u64,
    /// Sends rejected synchronously with `EFAULT`.
    pub efaults: u64,
    /// Segments that could not get an skbuf.
    pub alloc_failures: u64,
    /// Resets sent in response to segments for unknown connections.
    pub rsts_sent: u64,
}

/// The TCP endpoint of one node: its sockets to every peer plus the
/// node-wide kernel-memory state.
///
/// # Example
///
/// ```
/// use simnet::fabric::NodeId;
/// use simnet::SimTime;
/// use transport::tcp::{TcpConfig, TcpStack};
/// use transport::{CallParams, CostModel, MsgClass, SendStatus, Substrate};
///
/// let mut a: TcpStack<&str> = TcpStack::new(NodeId(0), TcpConfig::default(), CostModel::tcp());
/// let mut out = Vec::new();
/// a.open(SimTime::ZERO, NodeId(1), &mut out);
/// // Until the handshake completes the message is queued, not refused:
/// let st = a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "hi", 64,
///                 CallParams::default(), &mut out);
/// assert_eq!(st, SendStatus::Accepted);
/// ```
#[derive(Debug)]
pub struct TcpStack<M> {
    node: NodeId,
    config: TcpConfig,
    cost: CostModel,
    next_conn: u64,
    alloc_fail: bool,
    app_receiving: bool,
    conns: BTreeMap<NodeId, Vec<Conn<M>>>,
    parked: Vec<(NodeId, MsgRec<M>)>,
    /// Scratch for assembling in-order deliveries in `process_data`;
    /// kept on the stack so steady-state receive reuses its capacity
    /// instead of allocating a fresh buffer per data segment.
    delivery: Vec<MsgRec<M>>,
    stats: TcpStats,
    /// Structured-tracing switch; checked before any trace event is
    /// even constructed so the disabled path costs one branch.
    trace: bool,
    /// Causal-attribution switch, same discipline as `trace`.
    attr: bool,
}

impl<M: Clone> TcpStack<M> {
    /// Creates the endpoint for `node`.
    pub fn new(node: NodeId, config: TcpConfig, cost: CostModel) -> Self {
        TcpStack {
            node,
            config,
            cost,
            // Connection ids must stay unique across process restarts on
            // this node: start from a node-distinct base.
            next_conn: node.0 as u64 * 1_000_000_000 + 1,
            alloc_fail: false,
            app_receiving: true,
            conns: BTreeMap::new(),
            parked: Vec::new(),
            delivery: Vec::new(),
            stats: TcpStats::default(),
            trace: false,
            attr: false,
        }
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &TcpStats {
        &self.stats
    }

    /// Bytes buffered (sent-but-unacked plus unsent) towards `peer`,
    /// over all of its connections.
    pub fn buffered_bytes(&self, peer: NodeId) -> u64 {
        self.conns
            .get(&peer)
            .map_or(0, |v| v.iter().map(Conn::buffered).sum())
    }

    /// Number of live connections (sockets) towards `peer`.
    pub fn conn_count(&self, peer: NodeId) -> usize {
        self.conns.get(&peer).map_or(0, Vec::len)
    }

    /// Pauses or resumes application-level consumption (models the
    /// process being SIGSTOPed: the kernel stays alive and advertises a
    /// zero window, so peers stall instead of seeing a failure — the
    /// paper's node-hang behaviour, §5.3).
    pub fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>) {
        if self.app_receiving == receiving {
            return;
        }
        self.app_receiving = receiving;
        if receiving {
            let parked = std::mem::take(&mut self.parked);
            for (peer, rec) in parked {
                self.deliver(now, peer, rec, out);
            }
        }
        // Advertise the new window on every connection.
        let targets: Vec<(NodeId, u64, u64)> = self
            .conns
            .iter()
            .flat_map(|(p, v)| v.iter().map(|c| (*p, c.id, c.rcv_next)))
            .collect();
        for (peer, conn, rcv_next) in targets {
            self.emit_ack(now, peer, conn, rcv_next, out);
        }
    }

    fn frame(&self, peer: NodeId, seg: TcpSegment<M>) -> Frame<WirePayload<M>> {
        let bytes = seg.len + self.config.header_bytes;
        Frame {
            src: self.node,
            dst: peer,
            bytes,
            payload: WirePayload::Tcp(seg),
        }
    }

    fn conn_mut(&mut self, peer: NodeId, id: u64) -> Option<&mut Conn<M>> {
        self.conns
            .get_mut(&peer)
            .and_then(|v| v.iter_mut().find(|c| c.id == id))
    }

    /// The connection sends currently use: the newest established one,
    /// else the newest pending one.
    fn active_conn_id(&self, peer: NodeId) -> Option<u64> {
        let v = self.conns.get(&peer)?;
        v.iter()
            .filter(|c| c.state == ConnState::Established)
            .map(|c| c.id)
            .max()
            .or_else(|| v.iter().map(|c| c.id).max())
    }

    fn emit_ack(&mut self, _now: SimTime, peer: NodeId, conn: u64, ack: u64, out: &mut Effects<M>) {
        if self.alloc_fail {
            self.stats.alloc_failures += 1;
            return; // the kernel cannot even build an ACK
        }
        let seg = TcpSegment {
            kind: SegKind::Data,
            conn,
            seq: 0,
            len: 0,
            ack,
            window_open: self.app_receiving,
            msgs: Vec::new(),
        };
        out.push(Effect::ChargeCpu(self.cost.ack_cost));
        out.push(Effect::Transmit(self.frame(peer, seg)));
    }

    fn send_rst(&mut self, peer: NodeId, conn: u64, out: &mut Effects<M>) {
        if self.alloc_fail {
            return;
        }
        self.stats.rsts_sent += 1;
        let seg = TcpSegment {
            kind: SegKind::Rst,
            conn,
            seq: 0,
            len: 0,
            ack: 0,
            window_open: true,
            msgs: Vec::new(),
        };
        out.push(Effect::Transmit(self.frame(peer, seg)));
    }

    fn arm_timer(
        &mut self,
        now: SimTime,
        peer: NodeId,
        conn: u64,
        kind: TimerKind,
        delay: SimDuration,
        out: &mut Effects<M>,
    ) {
        let node = self.node;
        let Some(c) = self.conn_mut(peer, conn) else {
            return;
        };
        c.timer_gen += 1;
        if kind == TimerKind::Retransmit {
            c.rtx_armed = true;
            c.rtx_at = now + delay;
        }
        let key = TimerKey {
            node,
            peer,
            conn,
            kind,
            gen: c.timer_gen,
        };
        out.push(Effect::SetTimer {
            at: now + delay,
            key,
        });
    }

    /// Transmits as much buffered stream as windows and kernel memory
    /// allow on connection `conn`.
    fn pump(&mut self, now: SimTime, peer: NodeId, conn: u64, out: &mut Effects<M>) {
        loop {
            let app_receiving = self.app_receiving;
            let mss = u64::from(self.config.mss);
            let alloc_retry = self.config.alloc_retry;
            let alloc_fail = self.alloc_fail;
            let Some(c) = self.conn_mut(peer, conn) else {
                return;
            };
            if c.state != ConnState::Established || !c.peer_window_open || c.snd_sent >= c.next_seq
            {
                return;
            }
            if alloc_fail {
                self.stats.alloc_failures += 1;
                let waiting = self
                    .conn_mut(peer, conn)
                    .map(|c| std::mem::replace(&mut c.alloc_waiting, true))
                    .unwrap_or(true);
                if !waiting {
                    self.arm_timer(now, peer, conn, TimerKind::AllocRetry, alloc_retry, out);
                }
                return;
            }
            let seq = c.snd_sent;
            let end = c.next_seq.min(seq + mss);
            let len = (end - seq) as u32;
            let msgs: Vec<MsgRec<M>> = c
                .retained
                .range(seq + 1..=end)
                .map(|(_, rec)| rec.clone())
                .collect();
            let ack = c.rcv_next;
            c.snd_sent = end;
            if c.first_unacked_at.is_none() {
                c.first_unacked_at = Some(now);
            }
            let rtx_armed = c.rtx_armed;
            let rto = c.rto;
            let seg = TcpSegment {
                kind: SegKind::Data,
                conn,
                seq,
                len,
                ack,
                window_open: app_receiving,
                msgs,
            };
            self.stats.data_segments_sent += 1;
            let cks = SimDuration::from_nanos(
                (f64::from(len) * self.cost.checksum_ns_per_byte) as u64,
            );
            out.push(Effect::ChargeCpu(cks));
            out.push(Effect::Transmit(self.frame(peer, seg)));
            if !rtx_armed {
                self.arm_timer(now, peer, conn, TimerKind::Retransmit, rto, out);
            }
        }
    }

    /// Removes one connection; optionally resets the peer and reports
    /// the break upstream.
    fn teardown(
        &mut self,
        now: SimTime,
        peer: NodeId,
        conn: u64,
        reason: BreakReason,
        send_rst: bool,
        out: &mut Effects<M>,
    ) {
        let removed = match self.conns.get_mut(&peer) {
            Some(v) => {
                let before = v.len();
                v.retain(|c| c.id != conn);
                let removed = v.len() != before;
                if v.is_empty() {
                    self.conns.remove(&peer);
                }
                removed
            }
            None => false,
        };
        if removed {
            if send_rst {
                self.send_rst(peer, conn, out);
            }
            if self.trace {
                out.push(Effect::Trace(
                    telemetry::TraceEvent::instant("tcp.conn_break", "tcp", self.node.0 as u32, now)
                        .arg_u64("peer", peer.0 as u64)
                        .arg_u64("conn", conn)
                        .arg_str("reason", reason.label()),
                ));
            }
            out.push(Effect::Upcall(Upcall::ConnBroken { peer, reason }));
        }
    }

    fn deliver(&mut self, _now: SimTime, peer: NodeId, rec: MsgRec<M>, out: &mut Effects<M>) {
        // Interrupt and checksum were already charged per segment in
        // process_data; the per-message work left is the protocol fixed
        // cost plus the copy to user space.
        let copy_ns = f64::from(rec.bytes) * self.cost.copy_ns_per_byte_recv;
        let cost = self.cost.recv_fixed + SimDuration::from_nanos(copy_ns as u64);
        out.push(Effect::ChargeCpu(cost));
        self.stats.messages_delivered += 1;
        out.push(Effect::Upcall(Upcall::Deliver {
            peer,
            msg: rec.msg,
            class: rec.class,
            bytes: rec.bytes,
        }));
    }

    fn process_ack(
        &mut self,
        now: SimTime,
        peer: NodeId,
        conn: u64,
        ack: u64,
        window_open: bool,
        out: &mut Effects<M>,
    ) {
        let initial_rto = self.config.initial_rto;
        let half_buffer = u64::from(self.config.send_buffer) / 2;
        let Some(c) = self.conn_mut(peer, conn) else {
            return;
        };
        c.peer_window_open = window_open;
        let mut unblock = false;
        let mut progressed = false;
        if ack > c.snd_una {
            progressed = true;
            c.snd_una = ack;
            while let Some((&end, _)) = c.retained.first_key_value() {
                if end <= ack {
                    c.retained.pop_first();
                } else {
                    break;
                }
            }
            c.rto = initial_rto;
            // The (persistent) retransmit timer stays armed; it will
            // find the refreshed first-unacked age when it fires.
            c.first_unacked_at = if c.snd_una < c.snd_sent {
                Some(now)
            } else {
                None
            };
            if c.blocked && c.buffered() <= half_buffer {
                c.blocked = false;
                unblock = true;
            }
        }
        let rearm = progressed
            && c.snd_una < c.snd_sent
            && c.rtx_armed
            && c.rtx_at > now + c.rto;
        let rto = c.rto;
        if progressed {
            out.push(Effect::ChargeCpu(self.cost.ack_cost));
            if rearm {
                // The armed timer sits far out on a backed-off schedule;
                // bring it back in line with the fresh RTO so recovery
                // after a long stall drains at full speed.
                self.arm_timer(now, peer, conn, TimerKind::Retransmit, rto, out);
            }
            if unblock {
                out.push(Effect::Upcall(Upcall::Writable { peer }));
            }
        }
        self.pump(now, peer, conn, out);
    }

    fn process_data(
        &mut self,
        now: SimTime,
        peer: NodeId,
        seg: TcpSegment<M>,
        out: &mut Effects<M>,
    ) {
        let conn = seg.conn;
        // Per-segment receive work: interrupt + checksum. ACK-only
        // segments are interrupt-coalesced; their handling cost is the
        // ack_cost charged in process_ack.
        if seg.len > 0 {
            let cks = SimDuration::from_nanos(
                (f64::from(seg.len) * self.cost.checksum_ns_per_byte) as u64,
            );
            out.push(Effect::ChargeCpu(self.cost.interrupt + cks));
        }

        let Some(c) = self.conn_mut(peer, conn) else {
            return;
        };
        if seg.len > 0 {
            let (s, e) = (seg.seq, seg.seq + u64::from(seg.len));
            insert_range(&mut c.ooo, s, e);
            while let Some(&(rs, re)) = c.ooo.first() {
                if rs <= c.rcv_next {
                    c.rcv_next = c.rcv_next.max(re);
                    c.ooo.remove(0);
                } else {
                    break;
                }
            }
            for rec in seg.msgs {
                if rec.end > c.delivered_up_to {
                    c.pending_msgs.insert(rec.end, rec);
                }
            }
        }

        // Deliver completed messages in stream order (through the
        // reusable scratch buffer).
        let mut corrupted = false;
        let mut ready = std::mem::take(&mut self.delivery);
        debug_assert!(ready.is_empty());
        let ack_now;
        {
            let c = self.conn_mut(peer, conn).expect("conn exists");
            while let Some((&end, _)) = c.pending_msgs.first_key_value() {
                if end <= c.rcv_next {
                    let rec = c.pending_msgs.pop_first().expect("present").1;
                    c.delivered_up_to = end;
                    if rec.poisoned {
                        corrupted = true;
                        break;
                    }
                    ready.push(rec);
                } else {
                    break;
                }
            }
            ack_now = c.rcv_next;
        }
        for rec in ready.drain(..) {
            if self.app_receiving {
                self.deliver(now, peer, rec, out);
            } else {
                self.parked.push((peer, rec));
            }
        }
        self.delivery = ready;
        if corrupted {
            // Framing is unrecoverable: the length prefix read from the
            // stream is garbage. Reset the connection.
            self.stats.framing_errors += 1;
            if self.trace {
                out.push(Effect::Trace(telemetry::TraceEvent::instant(
                    "tcp.framing_error",
                    "tcp",
                    self.node.0 as u32,
                    now,
                )
                .arg_u64("peer", peer.0 as u64)));
            }
            self.teardown(now, peer, conn, BreakReason::StreamCorrupt, true, out);
            return;
        }
        if seg.len > 0 {
            self.emit_ack(now, peer, conn, ack_now, out);
        }
    }
}

impl<M: Clone> Substrate<M> for TcpStack<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn open(&mut self, now: SimTime, peer: NodeId, out: &mut Effects<M>) {
        // Re-opening supersedes any half-open attempt but coexists with
        // established sockets (old or new).
        let entry = self.conns.entry(peer).or_default();
        entry.retain(|c| c.state != ConnState::SynSent);
        let id = self.next_conn;
        self.next_conn += 1;
        entry.push(Conn::new(id, now, ConnState::SynSent, self.config.initial_rto));
        let seg = TcpSegment {
            kind: SegKind::Syn,
            conn: id,
            seq: 0,
            len: 0,
            ack: 0,
            window_open: true,
            msgs: Vec::new(),
        };
        out.push(Effect::Transmit(self.frame(peer, seg)));
        self.arm_timer(now, peer, id, TimerKind::Connect, self.config.connect_retry, out);
    }

    fn close(&mut self, peer: NodeId) {
        self.conns.remove(&peer);
        self.parked.retain(|(p, _)| *p != peer);
    }

    fn is_connected(&self, peer: NodeId) -> bool {
        self.conns
            .get(&peer)
            .is_some_and(|v| v.iter().any(|c| c.state == ConnState::Established))
    }

    fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>) {
        TcpStack::set_app_receiving(self, now, receiving, out);
    }

    fn send(
        &mut self,
        now: SimTime,
        peer: NodeId,
        class: MsgClass,
        msg: M,
        bytes: u32,
        params: CallParams,
        out: &mut Effects<M>,
    ) -> SendStatus {
        let Some(conn) = self.active_conn_id(peer) else {
            return SendStatus::NotConnected;
        };
        // NULL pointers are caught synchronously by the kernel: EFAULT.
        if params.ptr == PtrParam::Null {
            self.stats.efaults += 1;
            if self.trace {
                out.push(Effect::Trace(telemetry::TraceEvent::instant(
                    "tcp.efault",
                    "tcp",
                    self.node.0 as u32,
                    now,
                )
                .arg_u64("peer", peer.0 as u64)));
            }
            out.push(Effect::ChargeCpu(SimDuration::from_micros(2)));
            return SendStatus::SyncError;
        }
        let wire_len = i64::from(bytes) + i64::from(params.size_delta);
        let wire_len = wire_len.clamp(0, i64::from(u32::MAX)) as u64;

        let send_buffer = u64::from(self.config.send_buffer);
        let c = self.conn_mut(peer, conn).expect("active conn exists");
        if c.buffered() + wire_len > send_buffer && c.buffered() > 0 {
            c.blocked = true;
            return SendStatus::WouldBlock;
        }
        let start = c.next_seq;
        let end = start + wire_len;
        c.next_seq = end;
        // A mangled pointer or size desynchronizes the framing from this
        // message onward.
        if !params.is_clean() && c.poisoned_from.is_none() {
            c.poisoned_from = Some(start);
        }
        let poisoned = c.poisoned_from.is_some_and(|p| end > p);
        c.retained.insert(
            end,
            MsgRec {
                start,
                end,
                msg,
                class,
                bytes,
                poisoned,
            },
        );
        out.push(Effect::ChargeCpu(self.cost.send_cost(bytes, class.is_bulk())));
        self.pump(now, peer, conn, out);
        SendStatus::Accepted
    }

    fn frame_arrived(&mut self, now: SimTime, frame: Frame<WirePayload<M>>, out: &mut Effects<M>) {
        debug_assert_eq!(frame.dst, self.node);
        let WirePayload::Tcp(seg) = frame.payload else {
            // A VIA packet on a TCP node would be a wiring bug.
            panic!("TCP stack received a non-TCP frame");
        };
        let peer = frame.src;
        // Kernel memory exhaustion: arriving packets are dropped before
        // protocol processing (§5.4).
        if self.alloc_fail && seg.kind != SegKind::Rst {
            self.stats.alloc_failures += 1;
            return;
        }
        match seg.kind {
            SegKind::Syn => {
                let id = seg.conn;
                if self.conn_mut(peer, id).is_none() {
                    // A fresh socket from the peer — it coexists with any
                    // older connections we still hold to that node.
                    let c = Conn::new(id, now, ConnState::Established, self.config.initial_rto);
                    self.conns.entry(peer).or_default().push(c);
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "tcp.connected",
                            "tcp",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)));
                    }
                    out.push(Effect::Upcall(Upcall::Connected { peer }));
                }
                let reply = TcpSegment {
                    kind: SegKind::SynAck,
                    conn: id,
                    seq: 0,
                    len: 0,
                    ack: 0,
                    window_open: self.app_receiving,
                    msgs: Vec::new(),
                };
                out.push(Effect::Transmit(self.frame(peer, reply)));
            }
            SegKind::SynAck => {
                let id = seg.conn;
                let established = match self.conn_mut(peer, id) {
                    Some(c) if c.state == ConnState::SynSent => {
                        c.state = ConnState::Established;
                        c.timer_gen += 1; // cancel connect retries
                        true
                    }
                    _ => false,
                };
                if established {
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "tcp.connected",
                            "tcp",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)));
                    }
                    out.push(Effect::Upcall(Upcall::Connected { peer }));
                    self.pump(now, peer, id, out);
                }
            }
            SegKind::Rst => {
                self.teardown(now, peer, seg.conn, BreakReason::PeerReset, false, out);
            }
            SegKind::Data => {
                let known = self
                    .conn_mut(peer, seg.conn)
                    .is_some_and(|c| c.state == ConnState::Established);
                if !known {
                    // Segment for a connection we do not have (e.g. we
                    // restarted): answer with a reset.
                    self.send_rst(peer, seg.conn, out);
                    return;
                }
                self.process_ack(now, peer, seg.conn, seg.ack, seg.window_open, out);
                self.process_data(now, peer, seg, out);
            }
        }
    }

    fn transmit_failed(
        &mut self,
        _now: SimTime,
        _peer: NodeId,
        _reason: LossReason,
        _out: &mut Effects<M>,
    ) {
        // TCP assumes losses are transient congestion; nothing reacts
        // here — the retransmit timer will recover or eventually abort.
    }

    fn timer_fired(&mut self, now: SimTime, key: TimerKey, out: &mut Effects<M>) {
        let peer = key.peer;
        let conn = key.conn;
        let abort_after = self.config.abort_after;
        let max_rto = self.config.max_rto;
        let mss = u64::from(self.config.mss);
        let connect_give_up = self.config.connect_give_up;
        let connect_retry = self.config.connect_retry;
        let app_receiving = self.app_receiving;
        let Some(c) = self.conn_mut(peer, conn) else {
            return;
        };
        if key.gen != c.timer_gen {
            return; // stale
        }
        match key.kind {
            TimerKind::Retransmit => {
                if !c.rtx_armed {
                    return;
                }
                c.rtx_armed = false;
                if c.snd_una >= c.snd_sent {
                    return; // everything acknowledged; timer disarms
                }
                let first = c.first_unacked_at.unwrap_or(now);
                // Acknowledgements arrived since this timer was set: the
                // oldest outstanding byte has not yet waited a full RTO.
                // Re-arm without retransmitting.
                if now.saturating_since(first) < c.rto {
                    let wait = c.rto - now.saturating_since(first);
                    self.arm_timer(now, peer, conn, TimerKind::Retransmit, wait, out);
                    return;
                }
                if now.saturating_since(first) >= abort_after {
                    self.stats.aborts += 1;
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "tcp.abort",
                            "tcp",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)
                        .arg_u64("stalled_us", now.saturating_since(first).as_nanos() / 1_000)));
                    }
                    if self.attr {
                        out.push(Effect::Attr(telemetry::AttrEvent::Abort));
                    }
                    self.teardown(now, peer, conn, BreakReason::RetransmitTimeout, true, out);
                    return;
                }
                if self.alloc_fail {
                    // Can't rebuild the segment without kernel memory;
                    // retry on the same schedule.
                    self.stats.alloc_failures += 1;
                    let rto = self.conn_mut(peer, conn).expect("present").rto;
                    self.arm_timer(now, peer, conn, TimerKind::Retransmit, rto, out);
                    return;
                }
                // Go-back-N lite: resend the oldest window segment.
                let c = self.conn_mut(peer, conn).expect("present");
                let seq = c.snd_una;
                let end = c.snd_sent.min(seq + mss);
                let len = (end - seq) as u32;
                let msgs: Vec<MsgRec<M>> = c
                    .retained
                    .range(seq + 1..=end)
                    .map(|(_, rec)| rec.clone())
                    .collect();
                c.rto = (c.rto * 2).min(max_rto);
                let rto = c.rto;
                let seg = TcpSegment {
                    kind: SegKind::Data,
                    conn,
                    seq,
                    len,
                    ack: c.rcv_next,
                    window_open: app_receiving,
                    msgs,
                };
                self.stats.data_segments_sent += 1;
                self.stats.retransmissions += 1;
                if self.trace {
                    out.push(Effect::Trace(telemetry::TraceEvent::instant(
                        "tcp.retransmit",
                        "tcp",
                        self.node.0 as u32,
                        now,
                    )
                    .arg_u64("peer", peer.0 as u64)
                    .arg_u64("seq", seq)
                    .arg_u64("rto_us", rto.as_nanos() / 1_000)));
                }
                if self.attr {
                    out.push(Effect::Attr(telemetry::AttrEvent::Retransmit));
                }
                out.push(Effect::Transmit(self.frame(peer, seg)));
                self.arm_timer(now, peer, conn, TimerKind::Retransmit, rto, out);
            }
            TimerKind::AllocRetry => {
                c.alloc_waiting = false;
                self.pump(now, peer, conn, out);
            }
            TimerKind::Connect => {
                if c.state != ConnState::SynSent {
                    return;
                }
                if now.saturating_since(c.opened_at) >= connect_give_up {
                    self.teardown(now, peer, conn, BreakReason::RetransmitTimeout, false, out);
                    return;
                }
                let seg = TcpSegment {
                    kind: SegKind::Syn,
                    conn,
                    seq: 0,
                    len: 0,
                    ack: 0,
                    window_open: true,
                    msgs: Vec::new(),
                };
                out.push(Effect::Transmit(self.frame(peer, seg)));
                self.arm_timer(now, peer, conn, TimerKind::Connect, connect_retry, out);
            }
        }
    }

    fn set_alloc_fail(&mut self, failing: bool) {
        self.alloc_fail = failing;
    }

    fn set_pin_fail(&mut self, _failing: bool) {
        // TCP does not pin memory; nothing to do.
    }

    fn restart(&mut self, _now: SimTime) {
        self.conns.clear();
        self.parked.clear();
        self.alloc_fail = false;
        self.app_receiving = true;
    }

    fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    fn set_attr(&mut self, enabled: bool) {
        self.attr = enabled;
    }

    fn export_metrics(&self, reg: &mut telemetry::MetricsRegistry) {
        let s = &self.stats;
        reg.counter_add("tcp.data_segments_sent", s.data_segments_sent);
        reg.counter_add("tcp.retransmissions", s.retransmissions);
        reg.counter_add("tcp.messages_delivered", s.messages_delivered);
        reg.counter_add("tcp.aborts", s.aborts);
        reg.counter_add("tcp.framing_errors", s.framing_errors);
        reg.counter_add("tcp.efaults", s.efaults);
        reg.counter_add("tcp.alloc_failures", s.alloc_failures);
        reg.counter_add("tcp.rsts_sent", s.rsts_sent);
    }
}

/// Inserts `[s, e)` into a sorted list of disjoint ranges, merging
/// overlaps.
fn insert_range(ranges: &mut Vec<(u64, u64)>, s: u64, e: u64) {
    if s >= e {
        return;
    }
    let mut new = (s, e);
    let mut i = 0;
    while i < ranges.len() {
        let (rs, re) = ranges[i];
        if re < new.0 {
            i += 1;
        } else if rs > new.1 {
            break;
        } else {
            new.0 = new.0.min(rs);
            new.1 = new.1.max(re);
            ranges.remove(i);
        }
    }
    ranges.insert(i, new);
    debug_assert!(ranges.windows(2).all(|w| w[0].1 < w[1].0));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::CleanInterposer;
    use crate::api::SendInterposer;

    type Stack = TcpStack<&'static str>;

    fn pair() -> (Stack, Stack) {
        let a = TcpStack::new(NodeId(0), TcpConfig::default(), CostModel::tcp());
        let b = TcpStack::new(NodeId(1), TcpConfig::default(), CostModel::tcp());
        (a, b)
    }

    /// Ferries every Transmit effect to the destination stack, returning
    /// all upcalls seen.
    fn exchange(
        now: SimTime,
        stacks: &mut [&mut Stack],
        mut effects: Vec<Effect<&'static str>>,
    ) -> Vec<Upcall<&'static str>> {
        let mut upcalls = Vec::new();
        while let Some(e) = effects.pop() {
            match e {
                Effect::Transmit(frame) => {
                    let mut out = Vec::new();
                    let dst = frame.dst;
                    for s in stacks.iter_mut() {
                        if s.node() == dst {
                            s.frame_arrived(now, frame, &mut out);
                            break;
                        }
                    }
                    effects.extend(out);
                }
                Effect::Upcall(u) => upcalls.push(u),
                Effect::SetTimer { .. } | Effect::ChargeCpu(_) | Effect::Trace(_)
                | Effect::Attr(_) => {}
            }
        }
        upcalls
    }

    fn connect(a: &mut Stack, b: &mut Stack) {
        let mut out = Vec::new();
        a.open(SimTime::ZERO, b.node(), &mut out);
        exchange(SimTime::ZERO, &mut [a, b], out);
        assert!(a.is_connected(b.node()));
        assert!(b.is_connected(a.node()));
    }

    fn first_timer(
        out: &[Effect<&'static str>],
        kind: TimerKind,
    ) -> Option<(SimTime, TimerKey)> {
        out.iter().find_map(|e| match e {
            Effect::SetTimer { at, key } if key.kind == kind => Some((*at, *key)),
            _ => None,
        })
    }

    #[test]
    fn handshake_establishes_both_ends() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
    }

    #[test]
    fn small_message_round_trip() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        let st = a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::Forward,
            "ping",
            64,
            CallParams::default(),
            &mut out,
        );
        assert_eq!(st, SendStatus::Accepted);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let delivered: Vec<_> = ups
            .iter()
            .filter_map(|u| match u {
                Upcall::Deliver { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect();
        assert_eq!(delivered, ["ping"]);
        assert_eq!(b.stats().messages_delivered, 1);
        // The ACK came back and cleaned the retained queue.
        assert_eq!(a.buffered_bytes(NodeId(1)), 0);
    }

    #[test]
    fn large_message_spans_segments_and_arrives_once() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "file",
            40_000, // 5 segments at MSS 8192
            CallParams::default(),
            &mut out,
        );
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let n = ups
            .iter()
            .filter(|u| matches!(u, Upcall::Deliver { .. }))
            .count();
        assert_eq!(n, 1);
        assert!(a.stats().data_segments_sent >= 5);
    }

    #[test]
    fn null_pointer_is_synchronous_efault() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        let st = a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "x",
            8192,
            CallParams {
                ptr: PtrParam::Null,
                size_delta: 0,
            },
            &mut out,
        );
        assert_eq!(st, SendStatus::SyncError);
        assert_eq!(a.stats().efaults, 1);
        // Nothing went on the wire.
        assert!(out.iter().all(|e| !matches!(e, Effect::Transmit(_))));
        // The connection is still healthy for subsequent traffic.
        let mut out = Vec::new();
        let st = a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::Forward,
            "ok",
            64,
            CallParams::default(),
            &mut out,
        );
        assert_eq!(st, SendStatus::Accepted);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "ok", .. })));
    }

    #[test]
    fn off_by_n_corrupts_the_rest_of_the_stream() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        // One clean message, then a mangled one, then another clean one.
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m1", 64, CallParams::default(), &mut out);
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::Forward,
            "bad",
            64,
            CallParams {
                ptr: PtrParam::OffBy(17),
                size_delta: 0,
            },
            &mut out,
        );
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m3", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let delivered: Vec<_> = ups
            .iter()
            .filter_map(|u| match u {
                Upcall::Deliver { msg, .. } => Some(*msg),
                _ => None,
            })
            .collect();
        // Only the pre-fault prefix arrives; the receiver then detects
        // corruption and resets, so both ends see the break.
        assert_eq!(delivered, ["m1"]);
        assert_eq!(b.stats().framing_errors, 1);
        let breaks = ups
            .iter()
            .filter(|u| matches!(u, Upcall::ConnBroken { .. }))
            .count();
        assert_eq!(breaks, 2, "both ends must observe the reset");
        assert!(!a.is_connected(NodeId(1)));
        assert!(!b.is_connected(NodeId(0)));
    }

    #[test]
    fn size_delta_also_poisons_the_stream() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "bad",
            8192,
            CallParams {
                ptr: PtrParam::Valid,
                size_delta: 31,
            },
            &mut out,
        );
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().all(|u| !matches!(u, Upcall::Deliver { .. })));
        assert_eq!(b.stats().framing_errors, 1);
    }

    #[test]
    fn send_buffer_fills_and_reports_would_block() {
        let (mut a, _b) = pair();
        // Open but never complete the handshake: nothing drains.
        let mut out = Vec::new();
        a.open(SimTime::ZERO, NodeId(1), &mut out);
        let mut blocked = false;
        for _ in 0..100 {
            let mut out = Vec::new();
            let st = a.send(
                SimTime::ZERO,
                NodeId(1),
                MsgClass::FileData,
                "blob",
                8192,
                CallParams::default(),
                &mut out,
            );
            if st == SendStatus::WouldBlock {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "a 32KB buffer must fill after 4 x 8KB sends");
    }

    #[test]
    fn retransmission_recovers_a_lost_segment() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "once", 64, CallParams::default(), &mut out);
        // Drop the data frame; keep only the retransmit timer.
        let timer = first_timer(&out, TimerKind::Retransmit).expect("retransmit timer armed");
        // Fire the timer: the stack must resend.
        let mut out = Vec::new();
        a.timer_fired(timer.0, timer.1, &mut out);
        assert_eq!(a.stats().retransmissions, 1);
        let ups = exchange(timer.0, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "once", .. })));
    }

    #[test]
    fn superseded_retransmit_timer_is_inert() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
        let old = first_timer(&out, TimerKind::Retransmit).expect("retransmit timer armed");
        // The segment is lost; the firing timer retransmits and re-arms
        // with a fresh gen, superseding `old`.
        let mut out = Vec::new();
        a.timer_fired(old.0, old.1, &mut out);
        let new = first_timer(&out, TimerKind::Retransmit).expect("re-armed");
        assert!(new.1.gen > old.1.gen, "re-arm must supersede the old gen");
        assert_eq!(a.stats().retransmissions, 1);
        // The superseded key must never act again: no effects, no
        // retransmission, no timer churn.
        let mut out = Vec::new();
        a.timer_fired(new.0, old.1, &mut out);
        assert!(out.is_empty(), "stale timer produced effects: {out:?}");
        assert_eq!(a.stats().retransmissions, 1);
        drop(b);
    }

    #[test]
    fn superseded_connect_timer_is_inert() {
        let (mut a, _b) = pair();
        let mut out = Vec::new();
        a.open(SimTime::ZERO, NodeId(1), &mut out);
        let old = first_timer(&out, TimerKind::Connect).expect("connect retry armed");
        // The SYN goes nowhere; the retry fires and re-arms.
        let mut out = Vec::new();
        a.timer_fired(old.0, old.1, &mut out);
        let new = first_timer(&out, TimerKind::Connect).expect("retry re-armed");
        assert!(new.1.gen > old.1.gen);
        // Firing the superseded key again must be a pure no-op.
        let mut out = Vec::new();
        a.timer_fired(new.0, old.1, &mut out);
        assert!(out.is_empty(), "stale timer produced effects: {out:?}");
    }

    #[test]
    fn rto_backs_off_exponentially_and_aborts_eventually() {
        let cfg = TcpConfig::default();
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
        // Simulate total loss: fire retransmit timers forever.
        let mut timer = first_timer(&out, TimerKind::Retransmit).expect("armed");
        let mut broke = false;
        for _ in 0..60 {
            let mut out = Vec::new();
            a.timer_fired(timer.0, timer.1, &mut out);
            if out.iter().any(|e| {
                matches!(
                    e,
                    Effect::Upcall(Upcall::ConnBroken {
                        reason: BreakReason::RetransmitTimeout,
                        ..
                    })
                )
            }) {
                broke = true;
                assert!(timer.0.saturating_since(SimTime::ZERO) >= cfg.abort_after);
                break;
            }
            timer = first_timer(&out, TimerKind::Retransmit).expect("re-armed");
        }
        assert!(broke, "connection must abort after ~13 minutes of loss");
        assert_eq!(a.stats().aborts, 1);
        // The abort interval must be within the paper's 10..15-minute window.
        let secs = cfg.abort_after.as_secs_f64();
        assert!((600.0..=900.0).contains(&secs));
        drop(b);
    }

    #[test]
    fn alloc_failure_queues_sends_and_drops_arrivals() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        b.set_alloc_fail(true);
        // a -> b: frame arrives but b's kernel drops it.
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().all(|u| !matches!(u, Upcall::Deliver { .. })));
        assert!(b.stats().alloc_failures > 0);
        assert_eq!(b.stats().messages_delivered, 0);

        // b -> a: b cannot even transmit; the segment waits for memory.
        let mut out = Vec::new();
        let st = b.send(SimTime::ZERO, NodeId(0), MsgClass::Forward, "r", 64, CallParams::default(), &mut out);
        assert_eq!(st, SendStatus::Accepted);
        assert!(out.iter().all(|e| !matches!(e, Effect::Transmit(_))));
        // Memory comes back; the alloc-retry timer flushes the queue.
        b.set_alloc_fail(false);
        let timer = first_timer(&out, TimerKind::AllocRetry).expect("alloc retry armed");
        let mut out = Vec::new();
        b.timer_fired(timer.0, timer.1, &mut out);
        let ups = exchange(timer.0, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "r", .. })));
    }

    #[test]
    fn zero_window_parks_delivery_until_resume() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        // Hang b's application.
        let mut out = Vec::new();
        b.set_app_receiving(SimTime::ZERO, false, &mut out);
        exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "held", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().all(|u| !matches!(u, Upcall::Deliver { .. })));
        // SIGCONT: the parked message is delivered.
        let mut out = Vec::new();
        b.set_app_receiving(SimTime::ZERO, true, &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "held", .. })));
    }

    #[test]
    fn peer_restart_is_discovered_via_reset() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        b.restart(SimTime::ZERO);
        assert!(!b.is_connected(NodeId(0)));
        // a still believes in the connection; its next send elicits a RST.
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().any(|u| matches!(
            u,
            Upcall::ConnBroken {
                reason: BreakReason::PeerReset,
                ..
            }
        )));
        assert!(!a.is_connected(NodeId(1)));
    }

    /// The paper's §5.3 rejoin race: a restarted node's new socket
    /// coexists with the peer's stalled old socket; rejoin traffic flows
    /// on the new one while the old one keeps the peer believing the
    /// node never left — until a retransmission on the old socket draws
    /// a reset.
    #[test]
    fn new_socket_coexists_with_a_stalled_old_one() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        // a has unacknowledged data in flight when b "crashes".
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "stalled", 64, CallParams::default(), &mut out);
        let rtx = first_timer(&out, TimerKind::Retransmit).expect("armed");
        // b reboots: fresh transport state, new socket to a.
        b.restart(SimTime::ZERO);
        let mut out = Vec::new();
        b.open(SimTime::ZERO, NodeId(0), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        // The new socket establishes; the old one is still there.
        assert!(ups.iter().any(|u| matches!(u, Upcall::Connected { .. })));
        assert_eq!(a.conn_count(NodeId(1)), 2);
        // Traffic flows on the new socket in both directions.
        let mut out = Vec::new();
        b.send(SimTime::ZERO, NodeId(0), MsgClass::Control, "rejoin?", 32, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "rejoin?", .. })));
        // Now the old socket's retransmission reaches the rebooted node:
        // reset, and the break finally surfaces at a.
        let mut out = Vec::new();
        a.timer_fired(rtx.0, rtx.1, &mut out);
        let ups = exchange(rtx.0, &mut [&mut a, &mut b], out);
        assert!(ups.iter().any(|u| matches!(
            u,
            Upcall::ConnBroken {
                reason: BreakReason::PeerReset,
                ..
            }
        )));
        assert!(b.stats().rsts_sent >= 1);
        assert_eq!(a.conn_count(NodeId(1)), 1, "only the new socket survives");
        assert!(a.is_connected(NodeId(1)));
    }

    #[test]
    fn insert_range_merges_overlaps() {
        let mut r = vec![];
        insert_range(&mut r, 10, 20);
        insert_range(&mut r, 30, 40);
        insert_range(&mut r, 15, 35);
        assert_eq!(r, vec![(10, 40)]);
        insert_range(&mut r, 0, 5);
        assert_eq!(r, vec![(0, 5), (10, 40)]);
        insert_range(&mut r, 5, 10);
        assert_eq!(r, vec![(0, 40)]);
    }

    #[test]
    fn clean_interposer_composes_with_send() {
        let (mut a, mut b) = pair();
        connect(&mut a, &mut b);
        let mut interposer = CleanInterposer;
        let params = interposer.mangle(SimTime::ZERO, MsgClass::Forward, CallParams::default());
        let mut out = Vec::new();
        let st = a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, params, &mut out);
        assert_eq!(st, SendStatus::Accepted);
    }
}
