//! Closed-world, statically dispatched union of the two substrates.
//!
//! The cluster composition layer only ever instantiates [`TcpStack`] or
//! [`ViaNic`]; holding them as `Box<dyn Substrate>` puts a virtual call
//! (and a pointer chase) on every frame, timer, and send of the
//! simulation hot path. [`SubstrateImpl`] is the devirtualized
//! alternative: a two-variant enum whose method bodies are a `match`
//! that the compiler can inline per call site. The [`Substrate`] trait
//! itself stays — tests still mock it — and `SubstrateImpl` implements
//! it too, so generic code accepts either form.

use simnet::fabric::{Frame, LossReason, NodeId};
use simnet::SimTime;

use crate::api::{
    CallParams, Effects, MsgClass, PinFailed, SendStatus, Substrate, TimerKey, WirePayload,
};
use crate::tcp::TcpStack;
use crate::via::ViaNic;

/// One of the two concrete communication substrates, dispatched
/// statically. See the module docs for why this exists.
#[derive(Debug)]
pub enum SubstrateImpl<M> {
    /// Kernel-style TCP ([`TcpStack`]).
    Tcp(TcpStack<M>),
    /// User-level VIA ([`ViaNic`]).
    Via(ViaNic<M>),
}

/// Expands to a `match` forwarding one call to whichever variant is
/// live. Every arm is the same expression with `s` bound to the
/// concrete transport, so calls compile to direct (inlinable) calls.
macro_rules! dispatch {
    ($self:expr, $s:ident => $call:expr) => {
        match $self {
            SubstrateImpl::Tcp($s) => $call,
            SubstrateImpl::Via($s) => $call,
        }
    };
}

impl<M: Clone> Substrate<M> for SubstrateImpl<M> {
    #[inline]
    fn node(&self) -> NodeId {
        dispatch!(self, s => Substrate::node(s))
    }

    #[inline]
    fn open(&mut self, now: SimTime, peer: NodeId, out: &mut Effects<M>) {
        dispatch!(self, s => Substrate::open(s, now, peer, out))
    }

    #[inline]
    fn close(&mut self, peer: NodeId) {
        dispatch!(self, s => Substrate::close(s, peer))
    }

    #[inline]
    fn is_connected(&self, peer: NodeId) -> bool {
        dispatch!(self, s => Substrate::is_connected(s, peer))
    }

    #[inline]
    fn register_pages(
        &mut self,
        now: SimTime,
        pages: u32,
        out: &mut Effects<M>,
    ) -> Result<(), PinFailed> {
        dispatch!(self, s => Substrate::register_pages(s, now, pages, out))
    }

    #[inline]
    fn deregister_pages(&mut self, now: SimTime, pages: u32, out: &mut Effects<M>) {
        dispatch!(self, s => Substrate::deregister_pages(s, now, pages, out))
    }

    #[inline]
    fn send(
        &mut self,
        now: SimTime,
        peer: NodeId,
        class: MsgClass,
        msg: M,
        bytes: u32,
        params: CallParams,
        out: &mut Effects<M>,
    ) -> SendStatus {
        dispatch!(self, s => Substrate::send(s, now, peer, class, msg, bytes, params, out))
    }

    #[inline]
    fn frame_arrived(&mut self, now: SimTime, frame: Frame<WirePayload<M>>, out: &mut Effects<M>) {
        dispatch!(self, s => Substrate::frame_arrived(s, now, frame, out))
    }

    #[inline]
    fn transmit_failed(
        &mut self,
        now: SimTime,
        peer: NodeId,
        reason: LossReason,
        out: &mut Effects<M>,
    ) {
        dispatch!(self, s => Substrate::transmit_failed(s, now, peer, reason, out))
    }

    #[inline]
    fn timer_fired(&mut self, now: SimTime, key: TimerKey, out: &mut Effects<M>) {
        dispatch!(self, s => Substrate::timer_fired(s, now, key, out))
    }

    #[inline]
    fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>) {
        dispatch!(self, s => Substrate::set_app_receiving(s, now, receiving, out))
    }

    #[inline]
    fn set_alloc_fail(&mut self, failing: bool) {
        dispatch!(self, s => Substrate::set_alloc_fail(s, failing))
    }

    #[inline]
    fn set_pin_fail(&mut self, failing: bool) {
        dispatch!(self, s => Substrate::set_pin_fail(s, failing))
    }

    #[inline]
    fn restart(&mut self, now: SimTime) {
        dispatch!(self, s => Substrate::restart(s, now))
    }

    #[inline]
    fn set_trace(&mut self, enabled: bool) {
        dispatch!(self, s => Substrate::set_trace(s, enabled))
    }

    #[inline]
    fn set_attr(&mut self, enabled: bool) {
        dispatch!(self, s => Substrate::set_attr(s, enabled))
    }

    fn export_metrics(&self, reg: &mut telemetry::MetricsRegistry) {
        dispatch!(self, s => Substrate::export_metrics(s, reg))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::CostModel;
    use crate::tcp::TcpConfig;
    use crate::via::ViaConfig;

    fn tcp(node: usize) -> SubstrateImpl<u64> {
        SubstrateImpl::Tcp(TcpStack::new(
            NodeId(node),
            TcpConfig::default(),
            CostModel::tcp(),
        ))
    }

    fn via(node: usize) -> SubstrateImpl<u64> {
        SubstrateImpl::Via(ViaNic::new(
            NodeId(node),
            ViaConfig::default(),
            CostModel::via0(),
        ))
    }

    #[test]
    fn enum_delegates_to_the_wrapped_substrate() {
        let t = tcp(3);
        assert_eq!(t.node(), NodeId(3));
        let v = via(7);
        assert_eq!(v.node(), NodeId(7));
    }

    #[test]
    fn open_produces_effects_through_the_enum() {
        let mut fx = Effects::new();
        let mut t = tcp(0);
        t.open(SimTime::ZERO, NodeId(1), &mut fx);
        assert!(!fx.is_empty(), "TCP open should emit SYN + timer effects");
        fx.clear();
        let mut v = via(0);
        v.open(SimTime::ZERO, NodeId(1), &mut fx);
        assert!(!fx.is_empty(), "VIA open should emit connect effects");
    }
}
