//! User-level VIA (Virtual Interface Architecture) model, after the
//! Giganet cLAN implementation the paper uses.
//!
//! The behaviours that drive the paper's results:
//!
//! * **Message boundaries.** Sends are descriptors, not stream bytes; a
//!   bad parameter damages one operation, never the framing of later
//!   messages.
//! * **Fail-stop fault model.** The SAN has hop-by-hop flow control, so
//!   packet loss signals something serious: any transmission fault
//!   breaks the connection immediately, giving PRESS near-instant fault
//!   detection (§5.2).
//! * **Pre-allocated resources.** Receive descriptors and communication
//!   buffers are registered (pinned) at start-up, making the substrate
//!   immune to kernel-memory exhaustion (§5.4). Only dynamic pinning
//!   (VIA-PRESS-5's zero-copy file cache) is exposed to pin faults, via
//!   [`ViaNic::register_pages`].
//! * **Asynchronous error reporting.** Bad parameters surface as error
//!   status in completed descriptors ([`Upcall::CompletionError`]); with
//!   remote memory writes the error is reported *at both ends* (§5.5).
//! * **Credit-based flow control.** PRESS implements flow-control
//!   messages itself when running on VIA (§3); modeled as credits
//!   returned in batches.

use std::collections::{BTreeMap, VecDeque};

use simnet::fabric::{Frame, LossReason, NodeId};
use simnet::{SimDuration, SimTime};

use crate::api::{
    BreakReason, CallParams, Effect, Effects, ErrorSite, MsgClass, PtrParam, SendStatus,
    Substrate, TimerKey, TimerKind, Upcall, WirePayload,
};
use crate::cost::CostModel;

/// How data moves on the VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViaMode {
    /// Regular send/receive descriptors, interrupt-driven reception
    /// (VIA-PRESS-0).
    Messaging,
    /// Remote memory writes into per-sender buffers, polled reception
    /// (VIA-PRESS-3 and VIA-PRESS-5).
    RemoteWrite,
}

/// Tunable VIA parameters.
#[derive(Debug, Clone)]
pub struct ViaConfig {
    /// Data movement / completion style.
    pub mode: ViaMode,
    /// Wire overhead per packet.
    pub header_bytes: u32,
    /// Pre-posted receive descriptors (= send credits) per VI.
    pub credits_per_vi: u32,
    /// Return credits to the sender after consuming this many messages.
    pub credit_return_batch: u32,
    /// Application-side queue bound while out of credits; beyond this,
    /// sends report [`SendStatus::WouldBlock`].
    pub max_pending_sends: usize,
    /// Connection-request retransmission interval.
    pub connect_retry: SimDuration,
    /// Give up on connection establishment after this long.
    pub connect_give_up: SimDuration,
    /// Pages pinned at start-up for descriptors and communication
    /// buffers (pre-allocation).
    pub startup_pinned_pages: u32,
    /// Normal pinning ceiling (Linux 2.2 limits pinning to half of
    /// physical memory; 206 MB nodes → ~25k pinnable 4 KB pages).
    pub pinned_page_limit: u32,
}

impl Default for ViaConfig {
    fn default() -> Self {
        ViaConfig {
            mode: ViaMode::Messaging,
            header_bytes: 16,
            credits_per_vi: 32,
            credit_return_batch: 8,
            max_pending_sends: 64,
            connect_retry: SimDuration::from_millis(500),
            connect_give_up: SimDuration::from_secs(10),
            startup_pinned_pages: 2_048, // 8 MB of comm buffers
            pinned_page_limit: 25_000,
        }
    }
}

impl ViaConfig {
    /// Configuration for VIA-PRESS-0.
    pub fn messaging() -> Self {
        ViaConfig::default()
    }

    /// Configuration for VIA-PRESS-3/5.
    pub fn remote_write() -> Self {
        ViaConfig {
            mode: ViaMode::RemoteWrite,
            ..ViaConfig::default()
        }
    }
}

/// Why a descriptor completed with error status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RemotePoison {
    /// NULL data pointer in the posted descriptor.
    NullPtr,
    /// Data pointer offset outside the registered region.
    OffByPtr,
    /// Declared size disagrees with the posted buffer.
    OffBySize,
}

impl RemotePoison {
    fn cause(self) -> &'static str {
        match self {
            RemotePoison::NullPtr => "null data pointer in descriptor",
            RemotePoison::OffByPtr => "data pointer outside registered region",
            RemotePoison::OffBySize => "descriptor length mismatch",
        }
    }
}

/// One VIA packet on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ViaPacket<M> {
    /// Connection request.
    ConnReq {
        /// Initiator's process incarnation.
        incarnation: u64,
    },
    /// Connection accept.
    ConnAck {
        /// Acceptor's process incarnation.
        incarnation: u64,
    },
    /// Teardown notification (sent when a packet hits a VI that no
    /// longer exists, e.g. after a process restart).
    Disconnect,
    /// An application message (or, when `poison` is set, a corrupted
    /// remote operation that completes in error at the receiver).
    Data {
        /// The message.
        msg: M,
        /// Class tag.
        class: MsgClass,
        /// Declared payload size.
        bytes: u32,
        /// Set when a bad-parameter fault rode along to the remote end.
        poison: Option<RemotePoison>,
        /// Sender's process incarnation.
        incarnation: u64,
    },
    /// Flow-control credit return.
    Credit {
        /// Number of receive descriptors re-posted.
        n: u32,
        /// Sender's process incarnation.
        incarnation: u64,
    },
}

/// Error returned when a memory-registration request cannot pin pages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PinError {
    /// Pages requested.
    pub requested: u32,
    /// Pages currently pinned on the node.
    pub pinned: u32,
    /// The effective ceiling that rejected the request.
    pub limit: u32,
}

impl std::fmt::Display for PinError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "cannot pin {} pages: {} already pinned, limit {}",
            self.requested, self.pinned, self.limit
        )
    }
}

impl std::error::Error for PinError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ViState {
    ReqSent,
    Established,
}

#[derive(Debug)]
struct Vi<M> {
    state: ViState,
    peer_inc: u64,
    opened_at: SimTime,
    credits: u32,
    pending: VecDeque<(MsgClass, M, u32, Option<RemotePoison>, SimTime)>,
    blocked: bool,
    consumed_since_credit: u32,
    timer_gen: u64,
}

impl<M> Vi<M> {
    fn new(now: SimTime, state: ViState, peer_inc: u64, credits: u32) -> Self {
        Vi {
            state,
            peer_inc,
            opened_at: now,
            credits,
            pending: VecDeque::new(),
            blocked: false,
            consumed_since_credit: 0,
            timer_gen: 0,
        }
    }
}

/// Behaviour counters.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ViaStats {
    /// Data packets sent.
    pub messages_sent: u64,
    /// Messages delivered to the application.
    pub messages_delivered: u64,
    /// Descriptors completed with error status.
    pub completion_errors: u64,
    /// Connections broken by the fail-stop model.
    pub conn_breaks: u64,
    /// Sends that had to wait for credits.
    pub credit_stalls: u64,
    /// Rejected pin requests.
    pub pin_failures: u64,
}

/// The VIA endpoint of one node: a VI per peer plus registered-memory
/// accounting.
///
/// # Example
///
/// ```
/// use simnet::fabric::NodeId;
/// use simnet::SimTime;
/// use transport::via::{ViaConfig, ViaNic};
/// use transport::{CostModel, Substrate};
///
/// let mut nic: ViaNic<&str> = ViaNic::new(NodeId(0), ViaConfig::remote_write(), CostModel::via5());
/// let mut out = Vec::new();
/// nic.open(SimTime::ZERO, NodeId(1), &mut out);
/// assert!(!nic.is_connected(NodeId(1))); // until the ConnAck returns
/// ```
#[derive(Debug)]
pub struct ViaNic<M> {
    node: NodeId,
    config: ViaConfig,
    cost: CostModel,
    incarnation: u64,
    pin_fail: bool,
    pinned_pages: u32,
    app_receiving: bool,
    vis: BTreeMap<NodeId, Vi<M>>,
    parked: Vec<(NodeId, M, MsgClass, u32)>,
    stats: ViaStats,
    /// Structured-tracing switch; checked before any trace event is
    /// even constructed so the disabled path costs one branch.
    trace: bool,
    /// Causal-attribution switch, same discipline as `trace`.
    attr: bool,
    /// Data-descriptor counter used to sample `via.descriptor` events
    /// while tracing (unstalled descriptors are emitted 1-in-64).
    trace_seq: u64,
}

impl<M: Clone> ViaNic<M> {
    /// Creates the endpoint for `node`, pre-registering the start-up
    /// communication buffers.
    pub fn new(node: NodeId, config: ViaConfig, cost: CostModel) -> Self {
        let pinned = config.startup_pinned_pages;
        ViaNic {
            node,
            config,
            cost,
            incarnation: 1,
            pin_fail: false,
            pinned_pages: pinned,
            app_receiving: true,
            vis: BTreeMap::new(),
            parked: Vec::new(),
            stats: ViaStats::default(),
            trace: false,
            attr: false,
            trace_seq: 0,
        }
    }

    /// Behaviour counters.
    pub fn stats(&self) -> &ViaStats {
        &self.stats
    }

    /// Pages currently pinned on this node.
    pub fn pinned_pages(&self) -> u32 {
        self.pinned_pages
    }

    /// Remaining send credits towards `peer` (testing/diagnostics).
    pub fn credits(&self, peer: NodeId) -> u32 {
        self.vis.get(&peer).map_or(0, |vi| vi.credits)
    }

    /// Registers (pins) `pages` 4 KB pages with the NIC — the dynamic
    /// pinning VIA-PRESS-5 performs for every file entering its cache.
    ///
    /// # Errors
    ///
    /// Fails when the pinned-page ceiling would be exceeded; under the
    /// Mendosus memory-locking fault the effective ceiling is the
    /// currently pinned amount, so *all* new requests fail (§4.2).
    pub fn register_pages(
        &mut self,
        now: SimTime,
        pages: u32,
        out: &mut Effects<M>,
    ) -> Result<(), PinError> {
        let limit = if self.pin_fail {
            self.pinned_pages // nothing more can be pinned
        } else {
            self.config.pinned_page_limit
        };
        if self.pinned_pages + pages > limit {
            self.stats.pin_failures += 1;
            if self.trace {
                out.push(Effect::Trace(telemetry::TraceEvent::instant(
                    "via.pin_fail",
                    "via",
                    self.node.0 as u32,
                    now,
                )
                .arg_u64("requested", u64::from(pages))
                .arg_u64("pinned", u64::from(self.pinned_pages))
                .arg_u64("limit", u64::from(limit))));
            }
            return Err(PinError {
                requested: pages,
                pinned: self.pinned_pages,
                limit,
            });
        }
        self.pinned_pages += pages;
        out.push(Effect::ChargeCpu(self.cost.pin_cost(pages)));
        Ok(())
    }

    /// Deregisters (unpins) `pages` pages.
    pub fn deregister_pages(&mut self, _now: SimTime, pages: u32, out: &mut Effects<M>) {
        self.pinned_pages = self.pinned_pages.saturating_sub(pages);
        out.push(Effect::ChargeCpu(self.cost.unpin_cost(pages)));
    }

    /// Pauses or resumes application-level consumption (process hang).
    /// While paused, arriving messages are held and no credits return,
    /// so peers stall exactly like TCP's zero window.
    pub fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>) {
        if self.app_receiving == receiving {
            return;
        }
        self.app_receiving = receiving;
        if receiving {
            let parked = std::mem::take(&mut self.parked);
            for (peer, msg, class, bytes) in parked {
                self.deliver(now, peer, msg, class, bytes, out);
            }
        }
    }

    fn frame(&self, peer: NodeId, bytes: u32, pkt: ViaPacket<M>) -> Frame<WirePayload<M>> {
        Frame {
            src: self.node,
            dst: peer,
            bytes: bytes + self.config.header_bytes,
            payload: WirePayload::Via(pkt),
        }
    }

    fn teardown(&mut self, now: SimTime, peer: NodeId, reason: BreakReason, out: &mut Effects<M>) {
        if self.vis.remove(&peer).is_some() {
            self.stats.conn_breaks += 1;
            if self.trace {
                out.push(Effect::Trace(telemetry::TraceEvent::instant(
                    "via.conn_break",
                    "via",
                    self.node.0 as u32,
                    now,
                )
                .arg_u64("peer", peer.0 as u64)
                .arg_str("reason", reason.label())));
            }
            if self.attr && !matches!(reason, BreakReason::LocalClose) {
                out.push(Effect::Attr(telemetry::AttrEvent::Abort));
            }
            out.push(Effect::Upcall(Upcall::ConnBroken { peer, reason }));
        }
        self.parked.retain(|(p, _, _, _)| *p != peer);
    }

    fn deliver(
        &mut self,
        _now: SimTime,
        peer: NodeId,
        msg: M,
        class: MsgClass,
        bytes: u32,
        out: &mut Effects<M>,
    ) {
        out.push(Effect::ChargeCpu(self.cost.recv_cost(bytes, class.is_bulk())));
        self.stats.messages_delivered += 1;
        out.push(Effect::Upcall(Upcall::Deliver {
            peer,
            msg,
            class,
            bytes,
        }));
        // Re-post the receive descriptor; batch credit returns.
        if let Some(vi) = self.vis.get_mut(&peer) {
            vi.consumed_since_credit += 1;
            if vi.consumed_since_credit >= self.config.credit_return_batch {
                let n = vi.consumed_since_credit;
                vi.consumed_since_credit = 0;
                let inc = self.incarnation;
                out.push(Effect::ChargeCpu(self.cost.credit_cost));
                out.push(Effect::Transmit(self.frame(
                    peer,
                    0,
                    ViaPacket::Credit { n, incarnation: inc },
                )));
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn transmit_data(
        &mut self,
        now: SimTime,
        posted: SimTime,
        peer: NodeId,
        class: MsgClass,
        msg: M,
        bytes: u32,
        poison: Option<RemotePoison>,
        out: &mut Effects<M>,
    ) {
        let rdma = self.config.mode == ViaMode::RemoteWrite;
        let inc = self.incarnation;
        self.stats.messages_sent += 1;
        if self.trace {
            // Every credit-stalled descriptor is worth a span (the wait
            // is the story); unstalled ones are sampled 1-in-64.
            self.trace_seq += 1;
            let waited = now.saturating_since(posted);
            if waited.as_nanos() > 0 || self.trace_seq.is_multiple_of(64) {
                out.push(Effect::Trace(
                    telemetry::TraceEvent::span(
                        "via.descriptor",
                        "via",
                        self.node.0 as u32,
                        posted,
                        waited,
                    )
                    .arg_u64("peer", peer.0 as u64)
                    .arg_u64("bytes", u64::from(bytes))
                    .arg_str("class", class.label()),
                ));
            }
        }
        out.push(Effect::ChargeCpu(self.cost.send_cost(bytes, class.is_bulk())));
        out.push(Effect::Transmit(self.frame(
            peer,
            bytes,
            ViaPacket::Data {
                msg,
                class,
                bytes,
                poison: if rdma { poison } else { None },
                incarnation: inc,
            },
        )));
    }

    fn drain_pending(&mut self, now: SimTime, peer: NodeId, out: &mut Effects<M>) {
        loop {
            let Some(vi) = self.vis.get_mut(&peer) else {
                return;
            };
            if vi.credits == 0 || vi.pending.is_empty() {
                break;
            }
            vi.credits -= 1;
            let (class, msg, bytes, poison, posted) = vi.pending.pop_front().expect("nonempty");
            self.transmit_data(now, posted, peer, class, msg, bytes, poison, out);
        }
        if let Some(vi) = self.vis.get_mut(&peer) {
            if vi.blocked && vi.pending.len() <= self.config.max_pending_sends / 2 {
                vi.blocked = false;
                out.push(Effect::Upcall(Upcall::Writable { peer }));
            }
        }
    }
}

impl<M: Clone> Substrate<M> for ViaNic<M> {
    fn node(&self) -> NodeId {
        self.node
    }

    fn open(&mut self, now: SimTime, peer: NodeId, out: &mut Effects<M>) {
        let credits = self.config.credits_per_vi;
        self.vis
            .insert(peer, Vi::new(now, ViState::ReqSent, 0, credits));
        let vi = self.vis.get_mut(&peer).expect("just inserted");
        vi.timer_gen += 1;
        let key = TimerKey {
            node: self.node,
            peer,
            conn: 0,
            kind: TimerKind::Connect,
            gen: vi.timer_gen,
        };
        let inc = self.incarnation;
        out.push(Effect::Transmit(self.frame(
            peer,
            0,
            ViaPacket::ConnReq { incarnation: inc },
        )));
        out.push(Effect::SetTimer {
            at: now + self.config.connect_retry,
            key,
        });
    }

    fn close(&mut self, peer: NodeId) {
        self.vis.remove(&peer);
        self.parked.retain(|(p, _, _, _)| *p != peer);
    }

    fn is_connected(&self, peer: NodeId) -> bool {
        self.vis
            .get(&peer)
            .is_some_and(|vi| vi.state == ViState::Established)
    }

    fn set_app_receiving(&mut self, now: SimTime, receiving: bool, out: &mut Effects<M>) {
        ViaNic::set_app_receiving(self, now, receiving, out);
    }

    fn register_pages(
        &mut self,
        now: SimTime,
        pages: u32,
        out: &mut Effects<M>,
    ) -> Result<(), crate::api::PinFailed> {
        ViaNic::register_pages(self, now, pages, out).map_err(|_| crate::api::PinFailed)
    }

    fn deregister_pages(&mut self, now: SimTime, pages: u32, out: &mut Effects<M>) {
        ViaNic::deregister_pages(self, now, pages, out);
    }

    fn send(
        &mut self,
        now: SimTime,
        peer: NodeId,
        class: MsgClass,
        msg: M,
        bytes: u32,
        params: CallParams,
        out: &mut Effects<M>,
    ) -> SendStatus {
        let Some(vi) = self.vis.get(&peer) else {
            return SendStatus::NotConnected;
        };
        if vi.state != ViState::Established {
            return SendStatus::NotConnected;
        }

        // Bad parameters surface through descriptor completion status —
        // asynchronously, unlike TCP's EFAULT (§5.5).
        let poison = match (params.ptr, params.size_delta) {
            (PtrParam::Null, _) => Some(RemotePoison::NullPtr),
            (PtrParam::OffBy(_), _) => Some(RemotePoison::OffByPtr),
            (PtrParam::Valid, d) if d != 0 => Some(RemotePoison::OffBySize),
            _ => None,
        };
        if let Some(p) = poison {
            self.stats.completion_errors += 1;
            if self.trace {
                out.push(Effect::Trace(telemetry::TraceEvent::instant(
                    "via.completion_error",
                    "via",
                    self.node.0 as u32,
                    now,
                )
                .arg_u64("peer", peer.0 as u64)
                .arg_str("site", "local")
                .arg_str("cause", p.cause())));
            }
            match (p, self.config.mode) {
                // Pointer faults are caught by the local NIC's address
                // translation; with remote writes the error is reported
                // at both ends (§5.5), so the poisoned operation also
                // travels to the peer.
                (RemotePoison::NullPtr | RemotePoison::OffByPtr, ViaMode::Messaging) => {
                    out.push(Effect::Upcall(Upcall::CompletionError {
                        peer,
                        site: ErrorSite::Local,
                        cause: p.cause(),
                    }));
                    return SendStatus::Accepted;
                }
                (RemotePoison::NullPtr | RemotePoison::OffByPtr, ViaMode::RemoteWrite) => {
                    out.push(Effect::Upcall(Upcall::CompletionError {
                        peer,
                        site: ErrorSite::Local,
                        cause: p.cause(),
                    }));
                    self.transmit_data(now, now, peer, class, msg, bytes, Some(p), out);
                    return SendStatus::Accepted;
                }
                // A wrong length passes the local checks ("valid" bad
                // parameters) and fails where the data lands.
                (RemotePoison::OffBySize, ViaMode::Messaging) => {
                    // Error manifests at the receiver only.
                    let vi = self.vis.get_mut(&peer).expect("checked");
                    if vi.credits > 0 {
                        vi.credits -= 1;
                    }
                    self.stats.messages_sent += 1;
                    let inc = self.incarnation;
                    out.push(Effect::Transmit(self.frame(
                        peer,
                        bytes,
                        ViaPacket::Data {
                            msg,
                            class,
                            bytes,
                            poison: Some(p),
                            incarnation: inc,
                        },
                    )));
                    return SendStatus::Accepted;
                }
                (RemotePoison::OffBySize, ViaMode::RemoteWrite) => {
                    out.push(Effect::Upcall(Upcall::CompletionError {
                        peer,
                        site: ErrorSite::Local,
                        cause: p.cause(),
                    }));
                    self.transmit_data(now, now, peer, class, msg, bytes, Some(p), out);
                    return SendStatus::Accepted;
                }
            }
        }

        let vi = self.vis.get_mut(&peer).expect("checked");
        if vi.credits == 0 || !vi.pending.is_empty() {
            self.stats.credit_stalls += 1;
            if vi.pending.len() >= self.config.max_pending_sends {
                vi.blocked = true;
                return SendStatus::WouldBlock;
            }
            vi.pending.push_back((class, msg, bytes, None, now));
            return SendStatus::Accepted;
        }
        vi.credits -= 1;
        self.transmit_data(now, now, peer, class, msg, bytes, None, out);
        SendStatus::Accepted
    }

    fn frame_arrived(&mut self, now: SimTime, frame: Frame<WirePayload<M>>, out: &mut Effects<M>) {
        debug_assert_eq!(frame.dst, self.node);
        let WirePayload::Via(pkt) = frame.payload else {
            panic!("VIA NIC received a non-VIA frame");
        };
        let peer = frame.src;
        match pkt {
            ViaPacket::ConnReq { incarnation } => {
                let fresh = !self
                    .vis
                    .get(&peer)
                    .is_some_and(|vi| vi.state == ViState::Established && vi.peer_inc == incarnation);
                if fresh {
                    // If a VI to the peer's *previous* incarnation is
                    // still up, the fail-stop model says that peer died:
                    // surface the break before accepting the new one.
                    if self
                        .vis
                        .get(&peer)
                        .is_some_and(|vi| vi.state == ViState::Established)
                    {
                        self.teardown(now, peer, BreakReason::PeerReset, out);
                    }
                    let credits = self.config.credits_per_vi;
                    self.vis
                        .insert(peer, Vi::new(now, ViState::Established, incarnation, credits));
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "via.connected",
                            "via",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)));
                    }
                    out.push(Effect::Upcall(Upcall::Connected { peer }));
                }
                let inc = self.incarnation;
                out.push(Effect::Transmit(self.frame(
                    peer,
                    0,
                    ViaPacket::ConnAck { incarnation: inc },
                )));
            }
            ViaPacket::ConnAck { incarnation } => {
                let mut established = false;
                if let Some(vi) = self.vis.get_mut(&peer) {
                    if vi.state == ViState::ReqSent {
                        vi.state = ViState::Established;
                        vi.peer_inc = incarnation;
                        vi.timer_gen += 1;
                        established = true;
                    }
                }
                if established {
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "via.connected",
                            "via",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)));
                    }
                    out.push(Effect::Upcall(Upcall::Connected { peer }));
                    self.drain_pending(now, peer, out);
                }
            }
            ViaPacket::Disconnect => {
                self.teardown(now, peer, BreakReason::PeerReset, out);
            }
            ViaPacket::Data {
                msg,
                class,
                bytes,
                poison,
                incarnation,
            } => {
                let known = self
                    .vis
                    .get(&peer)
                    .is_some_and(|vi| vi.state == ViState::Established && vi.peer_inc == incarnation);
                if !known {
                    out.push(Effect::Transmit(self.frame(peer, 0, ViaPacket::Disconnect)));
                    return;
                }
                if let Some(p) = poison {
                    // The corrupted operation completes in error here too.
                    self.stats.completion_errors += 1;
                    if self.trace {
                        out.push(Effect::Trace(telemetry::TraceEvent::instant(
                            "via.completion_error",
                            "via",
                            self.node.0 as u32,
                            now,
                        )
                        .arg_u64("peer", peer.0 as u64)
                        .arg_str("site", "remote")
                        .arg_str("cause", p.cause())));
                    }
                    out.push(Effect::Upcall(Upcall::CompletionError {
                        peer,
                        site: ErrorSite::Remote,
                        cause: p.cause(),
                    }));
                    return;
                }
                if self.app_receiving {
                    self.deliver(now, peer, msg, class, bytes, out);
                } else {
                    self.parked.push((peer, msg, class, bytes));
                }
            }
            ViaPacket::Credit { n, incarnation } => {
                let known = self
                    .vis
                    .get(&peer)
                    .is_some_and(|vi| vi.state == ViState::Established && vi.peer_inc == incarnation);
                if !known {
                    return;
                }
                out.push(Effect::ChargeCpu(self.cost.credit_cost));
                let vi = self.vis.get_mut(&peer).expect("checked");
                vi.credits = (vi.credits + n).min(self.config.credits_per_vi);
                self.drain_pending(now, peer, out);
            }
        }
    }

    fn transmit_failed(
        &mut self,
        now: SimTime,
        peer: NodeId,
        reason: LossReason,
        out: &mut Effects<M>,
    ) {
        // Fail-stop: the SAN reported a fault; the VI is broken (§7:
        // "packet loss signals more serious problems than transient
        // congestion").
        self.teardown(now, peer, BreakReason::NicError(reason), out);
    }

    fn timer_fired(&mut self, now: SimTime, key: TimerKey, out: &mut Effects<M>) {
        if key.kind != TimerKind::Connect {
            return;
        }
        let peer = key.peer;
        let Some(vi) = self.vis.get_mut(&peer) else {
            return;
        };
        if key.gen != vi.timer_gen || vi.state != ViState::ReqSent {
            return;
        }
        if now.saturating_since(vi.opened_at) >= self.config.connect_give_up {
            self.teardown(now, peer, BreakReason::RetransmitTimeout, out);
            return;
        }
        let inc = self.incarnation;
        out.push(Effect::Transmit(self.frame(
            peer,
            0,
            ViaPacket::ConnReq { incarnation: inc },
        )));
        out.push(Effect::SetTimer {
            at: now + self.config.connect_retry,
            key,
        });
    }

    fn set_alloc_fail(&mut self, _failing: bool) {
        // VIA pre-allocates all kernel resources at channel set-up; the
        // skbuf fault cannot touch it (§5.4). Intentionally a no-op.
    }

    fn set_pin_fail(&mut self, failing: bool) {
        self.pin_fail = failing;
    }

    fn restart(&mut self, _now: SimTime) {
        self.vis.clear();
        self.parked.clear();
        self.incarnation += 1;
        self.pin_fail = false;
        self.app_receiving = true;
        self.pinned_pages = self.config.startup_pinned_pages;
    }

    fn set_trace(&mut self, enabled: bool) {
        self.trace = enabled;
    }

    fn set_attr(&mut self, enabled: bool) {
        self.attr = enabled;
    }

    fn export_metrics(&self, reg: &mut telemetry::MetricsRegistry) {
        /// Pre-rendered `via.pinned_pages.nodeN` keys for the node counts
        /// the paper's clusters actually use, so a metrics export does
        /// not allocate per node. Falls back to `format!` beyond this.
        static PINNED_LABELS: [&str; 16] = [
            "via.pinned_pages.node0",
            "via.pinned_pages.node1",
            "via.pinned_pages.node2",
            "via.pinned_pages.node3",
            "via.pinned_pages.node4",
            "via.pinned_pages.node5",
            "via.pinned_pages.node6",
            "via.pinned_pages.node7",
            "via.pinned_pages.node8",
            "via.pinned_pages.node9",
            "via.pinned_pages.node10",
            "via.pinned_pages.node11",
            "via.pinned_pages.node12",
            "via.pinned_pages.node13",
            "via.pinned_pages.node14",
            "via.pinned_pages.node15",
        ];
        let s = &self.stats;
        reg.counter_add("via.messages_sent", s.messages_sent);
        reg.counter_add("via.messages_delivered", s.messages_delivered);
        reg.counter_add("via.completion_errors", s.completion_errors);
        reg.counter_add("via.conn_breaks", s.conn_breaks);
        reg.counter_add("via.credit_stalls", s.credit_stalls);
        reg.counter_add("via.pin_failures", s.pin_failures);
        let value = f64::from(self.pinned_pages);
        match PINNED_LABELS.get(self.node.0) {
            Some(label) => reg.gauge_set(label, value),
            None => reg.gauge_set(&format!("via.pinned_pages.node{}", self.node.0), value),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    type Nic = ViaNic<&'static str>;

    fn pair(mode: ViaMode) -> (Nic, Nic) {
        let cfg = match mode {
            ViaMode::Messaging => ViaConfig::messaging(),
            ViaMode::RemoteWrite => ViaConfig::remote_write(),
        };
        let cost = match mode {
            ViaMode::Messaging => CostModel::via0(),
            ViaMode::RemoteWrite => CostModel::via3(),
        };
        (
            ViaNic::new(NodeId(0), cfg.clone(), cost.clone()),
            ViaNic::new(NodeId(1), cfg, cost),
        )
    }

    fn exchange(
        now: SimTime,
        nics: &mut [&mut Nic],
        mut effects: Vec<Effect<&'static str>>,
    ) -> Vec<Upcall<&'static str>> {
        let mut upcalls = Vec::new();
        while let Some(e) = effects.pop() {
            match e {
                Effect::Transmit(frame) => {
                    let mut out = Vec::new();
                    let dst = frame.dst;
                    for n in nics.iter_mut() {
                        if n.node() == dst {
                            n.frame_arrived(now, frame, &mut out);
                            break;
                        }
                    }
                    effects.extend(out);
                }
                Effect::Upcall(u) => upcalls.push(u),
                Effect::SetTimer { .. } | Effect::ChargeCpu(_) | Effect::Trace(_)
                | Effect::Attr(_) => {}
            }
        }
        upcalls
    }

    fn connect(a: &mut Nic, b: &mut Nic) {
        let mut out = Vec::new();
        a.open(SimTime::ZERO, b.node(), &mut out);
        exchange(SimTime::ZERO, &mut [a, b], out);
        assert!(a.is_connected(b.node()) && b.is_connected(a.node()));
    }

    #[test]
    fn handshake_and_round_trip() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        let st = a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::Forward,
            "ping",
            64,
            CallParams::default(),
            &mut out,
        );
        assert_eq!(st, SendStatus::Accepted);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "ping", .. })));
        assert_eq!(b.stats().messages_delivered, 1);
    }

    #[test]
    fn credits_deplete_and_return_in_batches() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        let start = a.credits(NodeId(1));
        // Send a batch-worth of messages.
        let mut all = Vec::new();
        for _ in 0..8 {
            let mut out = Vec::new();
            a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
            all.extend(out);
        }
        exchange(SimTime::ZERO, &mut [&mut a, &mut b], all);
        // The receiver consumed 8 and returned the batch: credits back to full.
        assert_eq!(a.credits(NodeId(1)), start);
        assert_eq!(b.stats().messages_delivered, 8);
    }

    #[test]
    fn credit_exhaustion_blocks_sender_when_peer_stops_consuming() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        // Hang b's application: credits never return.
        let mut out = Vec::new();
        b.set_app_receiving(SimTime::ZERO, false, &mut out);
        let mut blocked = false;
        for _ in 0..200 {
            let mut out = Vec::new();
            let st = a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
            exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
            if st == SendStatus::WouldBlock {
                blocked = true;
                break;
            }
        }
        assert!(blocked, "sender must block once credits and queue are full");
        // Resume: parked deliveries flow and credits return.
        let mut out = Vec::new();
        b.set_app_receiving(SimTime::ZERO, true, &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().any(|u| matches!(u, Upcall::Deliver { .. })));
    }

    #[test]
    fn any_transmission_fault_breaks_the_connection() {
        let (mut a, mut b) = pair(ViaMode::RemoteWrite);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.transmit_failed(SimTime::ZERO, NodeId(1), LossReason::SrcLinkDown, &mut out);
        assert!(matches!(
            out.as_slice(),
            [Effect::Upcall(Upcall::ConnBroken {
                reason: BreakReason::NicError(LossReason::SrcLinkDown),
                ..
            })]
        ));
        assert!(!a.is_connected(NodeId(1)));
        assert_eq!(a.stats().conn_breaks, 1);
    }

    #[test]
    fn null_pointer_messaging_errors_locally_only() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "x",
            8192,
            CallParams {
                ptr: PtrParam::Null,
                size_delta: 0,
            },
            &mut out,
        );
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let locals = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Local, .. }))
            .count();
        let remotes = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Remote, .. }))
            .count();
        assert_eq!((locals, remotes), (1, 0));
        assert_eq!(b.stats().messages_delivered, 0);
    }

    #[test]
    fn null_pointer_remote_write_errors_at_both_ends() {
        let (mut a, mut b) = pair(ViaMode::RemoteWrite);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "x",
            8192,
            CallParams {
                ptr: PtrParam::Null,
                size_delta: 0,
            },
            &mut out,
        );
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let locals = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Local, .. }))
            .count();
        let remotes = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Remote, .. }))
            .count();
        assert_eq!((locals, remotes), (1, 1), "RDMA faults report at both ends");
    }

    #[test]
    fn off_by_size_messaging_errors_at_receiver_only() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::FileData,
            "x",
            8192,
            CallParams {
                ptr: PtrParam::Valid,
                size_delta: 40,
            },
            &mut out,
        );
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        let remotes = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Remote, .. }))
            .count();
        let locals = ups
            .iter()
            .filter(|u| matches!(u, Upcall::CompletionError { site: ErrorSite::Local, .. }))
            .count();
        assert_eq!((locals, remotes), (0, 1));
    }

    #[test]
    fn later_messages_are_unaffected_by_a_bad_descriptor() {
        // Message boundaries contain the damage — the key contrast with
        // TCP's byte stream.
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        let mut out = Vec::new();
        a.send(
            SimTime::ZERO,
            NodeId(1),
            MsgClass::Forward,
            "bad",
            64,
            CallParams {
                ptr: PtrParam::OffBy(50),
                size_delta: 0,
            },
            &mut out,
        );
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "good", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "good", .. })));
        assert!(a.is_connected(NodeId(1)), "the VI survives a bad descriptor");
    }

    #[test]
    fn pinning_respects_the_ceiling_and_the_fault() {
        let mut cfg = ViaConfig::remote_write();
        cfg.startup_pinned_pages = 100;
        cfg.pinned_page_limit = 150;
        let mut nic: Nic = ViaNic::new(NodeId(0), cfg, CostModel::via5());
        let mut out = Vec::new();
        assert!(nic.register_pages(SimTime::ZERO, 40, &mut out).is_ok());
        assert_eq!(nic.pinned_pages(), 140);
        // Above the ceiling: rejected.
        let err = nic
            .register_pages(SimTime::ZERO, 20, &mut out)
            .expect_err("over limit");
        assert_eq!(err.limit, 150);
        // Pin fault: nothing new can be pinned, but existing pins stay.
        nic.set_pin_fail(true);
        assert!(nic.register_pages(SimTime::ZERO, 1, &mut out).is_err());
        assert_eq!(nic.pinned_pages(), 140);
        // Releasing memory and clearing the fault recovers.
        nic.deregister_pages(SimTime::ZERO, 40, &mut out);
        nic.set_pin_fail(false);
        assert!(nic.register_pages(SimTime::ZERO, 20, &mut out).is_ok());
        assert_eq!(nic.stats().pin_failures, 2);
    }

    #[test]
    fn alloc_fault_is_a_no_op_for_via() {
        // Pre-allocation immunity (§5.4).
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        a.set_alloc_fail(true);
        b.set_alloc_fail(true);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "still works", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups
            .iter()
            .any(|u| matches!(u, Upcall::Deliver { msg: "still works", .. })));
    }

    #[test]
    fn peer_restart_discovered_by_disconnect() {
        let (mut a, mut b) = pair(ViaMode::Messaging);
        connect(&mut a, &mut b);
        b.restart(SimTime::ZERO);
        let mut out = Vec::new();
        a.send(SimTime::ZERO, NodeId(1), MsgClass::Forward, "m", 64, CallParams::default(), &mut out);
        let ups = exchange(SimTime::ZERO, &mut [&mut a, &mut b], out);
        assert!(ups.iter().any(|u| matches!(
            u,
            Upcall::ConnBroken {
                reason: BreakReason::PeerReset,
                ..
            }
        )));
        assert!(!a.is_connected(NodeId(1)));
    }

    #[test]
    fn restart_restores_startup_pin_baseline() {
        let mut cfg = ViaConfig::remote_write();
        cfg.startup_pinned_pages = 64;
        let mut nic: Nic = ViaNic::new(NodeId(0), cfg, CostModel::via5());
        let mut out = Vec::new();
        nic.register_pages(SimTime::ZERO, 500, &mut out).unwrap();
        nic.restart(SimTime::ZERO);
        assert_eq!(nic.pinned_pages(), 64);
    }
}
