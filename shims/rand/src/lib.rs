//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to a crates registry, so the
//! workspace vendors the *small* subset of `rand`'s API it actually
//! uses: [`rngs::SmallRng`], [`SeedableRng::seed_from_u64`], and the
//! [`RngExt`] sampling helpers. The generator is xoshiro256++ seeded
//! through SplitMix64 — the same algorithm family real `SmallRng` uses
//! on 64-bit targets — so statistical quality matches what the
//! simulations were designed against.
//!
//! Everything here is deterministic: no OS entropy, no global state.

/// Types that can construct themselves from seed material.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The raw 64-bit generator interface.
pub trait RngCore {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;
}

/// Values sampleable from the "standard" distribution of their type.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that can produce a uniform sample.
pub trait SampleRange {
    /// The element type produced.
    type Value;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Value;
}

/// Uniform integer below `n` via the widening-multiply map. The bias is
/// at most `n / 2^64`, far below anything a simulation can observe.
#[inline]
fn below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    assert!(n > 0, "empty range");
    ((u128::from(rng.next_u64()) * u128::from(n)) >> 64) as u64
}

impl SampleRange for core::ops::Range<u64> {
    type Value = u64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        assert!(self.start < self.end, "empty range");
        self.start + below(rng, self.end - self.start)
    }
}

impl SampleRange for core::ops::RangeInclusive<u64> {
    type Value = u64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range");
        let span = hi - lo;
        if span == u64::MAX {
            return rng.next_u64();
        }
        lo + below(rng, span + 1)
    }
}

impl SampleRange for core::ops::Range<u32> {
    type Value = u32;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> u32 {
        (u64::from(self.start)..u64::from(self.end)).sample_from(rng) as u32
    }
}

impl SampleRange for core::ops::Range<usize> {
    type Value = usize;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> usize {
        (self.start as u64..self.end as u64).sample_from(rng) as usize
    }
}

impl SampleRange for core::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

/// Convenience sampling methods, mirroring `rand::Rng`/`RngExt`.
pub trait RngExt: RngCore {
    /// Draws a standard-distribution value of type `T`.
    #[inline]
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    #[inline]
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Value {
        range.sample_from(self)
    }
}

impl<T: RngCore + ?Sized> RngExt for T {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically strong; the same
    /// family the real `SmallRng` uses on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            SmallRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(1);
        for _ in 0..64 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_bounds_respected() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2_000 {
            let v = r.random_range(2u64..=5);
            assert!((2..=5).contains(&v));
            lo_seen |= v == 2;
            hi_seen |= v == 5;
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn mean_is_centered() {
        let mut r = SmallRng::seed_from_u64(11);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
