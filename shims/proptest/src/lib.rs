//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach a crates registry, so this crate
//! vendors the subset of proptest the workspace's property tests use:
//! the [`proptest!`] macro, `prop_assert*` / `prop_assume!`, integer and
//! float range strategies, tuples, `prop::collection::vec`,
//! `prop::bool::ANY`, and `any::<T>()`.
//!
//! Semantics: each test body runs for a fixed number of generated cases
//! (`PROPTEST_CASES` env var overrides, default 64) with a per-test
//! deterministic seed derived from the test name, so failures reproduce
//! exactly. There is no shrinking — the failing case index and seed are
//! reported instead.

use rand::rngs::SmallRng;
use rand::{RngExt, SeedableRng};

/// Deterministic source of randomness handed to strategies.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// Builds the generator for one test case.
    pub fn new(seed: u64) -> Self {
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.random::<u64>()
    }

    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        self.inner.random::<f64>()
    }

    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.inner.random_range(0..n)
    }
}

/// Why a test case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the campaign aborts with this message.
    Fail(String),
    /// `prop_assume!` filtered the inputs; the case is retried.
    Reject(String),
}

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Number of generated cases per property (env-overridable).
fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Stable per-test seed: FNV-1a over the test name.
fn seed_for(name: &str) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in name.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// Drives one property: runs `f` until `case_count()` cases pass or one
/// fails. Rejected cases (via `prop_assume!`) are re-drawn, bounded so a
/// hostile filter cannot loop forever.
pub fn run_cases<F>(name: &str, mut f: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let wanted = case_count();
    let base = seed_for(name);
    let max_attempts = wanted.saturating_mul(16).max(wanted);
    let mut passed = 0u64;
    for attempt in 0..max_attempts {
        if passed == wanted {
            break;
        }
        let seed = base.wrapping_add(attempt.wrapping_mul(0x9E3779B97F4A7C15));
        let mut rng = TestRng::new(seed);
        match f(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {}
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest '{name}' failed at case {passed} (attempt {attempt}, seed {seed:#x}): {msg}"
                );
            }
        }
    }
}

/// A source of generated values.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

macro_rules! int_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for core::ops::Range<$ty> {
            type Value = $ty;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + rng.below(span) as $ty
            }
        }
        impl Strategy for core::ops::RangeInclusive<$ty> {
            type Value = $ty;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> $ty {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64);
                if span == u64::MAX {
                    return rng.next_u64() as $ty;
                }
                lo + rng.below(span + 1) as $ty
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

impl Strategy for core::ops::Range<f64> {
    type Value = f64;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[inline]
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! { (A, B) (A, B, C) (A, B, C, D) }

/// Types with a canonical "anything goes" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for u64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for u32 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Arbitrary for bool {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    #[inline]
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_f64()
    }
}

/// Strategy wrapper produced by [`any`].
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    #[inline]
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// `any::<T>()` — the full domain of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: core::marker::PhantomData,
    }
}

/// Namespaced strategy constructors (`prop::collection::vec`, …).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Accepted size specifications for [`vec`]: a fixed length or a
        /// half-open range of lengths.
        pub struct SizeRange {
            lo: usize,
            hi: usize, // exclusive
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<core::ops::Range<usize>> for SizeRange {
            fn from(r: core::ops::Range<usize>) -> Self {
                assert!(r.start < r.end, "empty size range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// Strategy for vectors of `element` values.
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// `vec(element, size)` — size is a usize or `lo..hi` range.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = if span <= 1 {
                    self.size.lo
                } else {
                    self.size.lo + rng.below(span) as usize
                };
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    /// Boolean strategies.
    pub mod bool {
        use crate::{Strategy, TestRng};

        /// The `prop::bool::ANY` strategy: fair coin.
        pub struct BoolAny;

        /// Either boolean, uniformly.
        pub const ANY: BoolAny = BoolAny;

        impl Strategy for BoolAny {
            type Value = bool;
            #[inline]
            fn sample(&self, rng: &mut TestRng) -> bool {
                rng.next_u64() & 1 == 1
            }
        }
    }
}

/// Everything a property-test file needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Strategy,
        TestCaseError,
    };
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// expands to a `#[test]` (the attribute is written by the caller and
/// passed through) that samples the strategies and runs the body across
/// many deterministic cases.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_cases(stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::sample(&($strat), __proptest_rng);)*
                    let __proptest_result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    __proptest_result
                });
            }
        )*
    };
}

/// Asserts inside a `proptest!` body; failure aborts the campaign with
/// the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+),
                l,
                r
            )));
        }
    }};
}

/// Inequality assertion inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "{}\n  both: {:?}",
                format!($($fmt)+),
                l
            )));
        }
    }};
}

/// Filters generated inputs; a rejected case is re-drawn rather than
/// counted as a pass or failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in 0.0f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((0.0..2.0).contains(&y));
        }

        #[test]
        fn vectors_respect_size(v in prop::collection::vec(0u32..10, 2..6), w in prop::collection::vec(any::<u64>(), 4)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 4);
        }

        #[test]
        fn assume_filters(n in 0u64..100) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }

        #[test]
        fn tuples_sample_componentwise(pair in (0u32..50, prop::bool::ANY)) {
            let (a, _b) = pair;
            prop_assert!(a < 50);
        }
    }

    #[test]
    #[should_panic(expected = "proptest 'always_fails'")]
    fn failure_panics_with_context() {
        crate::run_cases("always_fails", |_| {
            Err(crate::TestCaseError::fail("forced"))
        });
    }

    #[test]
    fn cases_are_deterministic() {
        let mut first = Vec::new();
        crate::run_cases("det_probe", |rng| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases("det_probe", |rng| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
