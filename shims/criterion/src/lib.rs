//! Offline stand-in for the `criterion` crate.
//!
//! The build environment cannot reach a crates registry, so this crate
//! provides the small harness surface the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], [`Throughput`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! It is a plain wall-clock harness: each benchmark is warmed up, then
//! timed over enough iterations to pass a minimum measurement window,
//! and the median per-iteration time (plus derived throughput) is
//! printed. No plotting, no statistics files — just numbers on stdout,
//! which is all the repro workflow needs.

use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup cost (accepted for API
/// compatibility; this harness always times the routine alone).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    fn new(sample_count: usize) -> Self {
        Bencher {
            samples: Vec::with_capacity(sample_count),
            sample_count,
        }
    }

    /// Times `routine` directly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up pass so lazy initialization is excluded.
        let _ = routine();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            let out = routine();
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    /// Times `routine` on a fresh value from `setup` each sample;
    /// setup time is excluded from the measurement.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let warm = setup();
        let _ = routine(warm);
        for _ in 0..self.sample_count {
            let input = setup();
            let start = Instant::now();
            let out = routine(input);
            self.samples.push(start.elapsed());
            drop(out);
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn report(name: &str, median: Duration, throughput: Option<Throughput>) {
    let mut line = format!("{name:<48} time: {}", human_time(median));
    if let Some(tp) = throughput {
        let secs = median.as_secs_f64();
        if secs > 0.0 {
            match tp {
                Throughput::Elements(n) => {
                    line.push_str(&format!("  thrpt: {:.0} elem/s", n as f64 / secs));
                }
                Throughput::Bytes(n) => {
                    line.push_str(&format!("  thrpt: {:.1} MiB/s", n as f64 / secs / (1 << 20) as f64));
                }
            }
        }
    }
    println!("{line}");
}

/// A named set of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
    _criterion: &'a mut Criterion,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Declares per-iteration throughput for derived rates.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, name.into());
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(&full, b.median(), self.throughput);
        self
    }

    /// Ends the group (no-op; kept for API parity).
    pub fn finish(&mut self) {}
}

/// Top-level harness state.
#[derive(Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Opens a configuration group.
    pub fn benchmark_group<N: Into<String>>(&mut self, name: N) -> BenchmarkGroup<'_> {
        let sample_size = self.effective_samples();
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            throughput: None,
            _criterion: self,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<N: Into<String>, F>(&mut self, name: N, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_samples());
        f(&mut b);
        report(&name.into(), b.median(), None);
        self
    }

    /// Accepted for API parity with `criterion_group!` expansions.
    pub fn configure_from_args(self) -> Self {
        self
    }

    fn effective_samples(&self) -> usize {
        if self.sample_size > 0 {
            self.sample_size
        } else {
            std::env::var("BENCH_SAMPLES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(20)
        }
    }
}

/// Bundles benchmark functions under one group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_reports() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(3);
        group.throughput(Throughput::Elements(10));
        let mut calls = 0;
        group.bench_function("iter", |b| {
            b.iter(|| {
                calls += 1;
                std::hint::black_box(calls)
            })
        });
        group.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(calls, 4);
    }

    #[test]
    fn iter_batched_gets_fresh_input() {
        let mut c = Criterion::default();
        let mut inputs = Vec::new();
        let mut counter = 0u32;
        c.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    counter += 1;
                    counter
                },
                |i| inputs.push(i),
                BatchSize::SmallInput,
            )
        });
        assert!(!inputs.is_empty());
        // Each sample saw a distinct setup value.
        let mut sorted = inputs.clone();
        sorted.dedup();
        assert_eq!(sorted.len(), inputs.len());
    }
}
