//! Umbrella crate for the cluster-performability reproduction.
//!
//! This crate re-exports the workspace's subsystem crates so examples,
//! integration tests, and downstream users can depend on a single name:
//!
//! * [`simnet`] — deterministic discrete-event engine and network fabric.
//! * [`transport`] — TCP and VIA protocol models.
//! * [`mendosus`] — fault-injection campaigns (Table 2 of the paper).
//! * [`press`] — the PRESS cluster web-server model (5 versions).
//! * [`workload`] — trace generation and Poisson clients.
//! * [`performability`] — the 7-stage model and phase-2 analytics.
//! * [`experiments`] — ready-made experiments for every table and figure.
//!
//! # Quickstart
//!
//! ```
//! use cluster_performability::experiments::{ClusterConfig, ClusterSim};
//! use cluster_performability::press::PressVersion;
//! use cluster_performability::simnet::SimTime;
//!
//! // The shrunk test-bed boots fast; `paper_defaults` gives the full
//! // 4-node, 128 MB-cache configuration of §5.1.
//! let config = ClusterConfig::small(PressVersion::Via5);
//! let mut sim = ClusterSim::new(config, 42);
//! sim.run_until(SimTime::from_secs(5));
//! let report = sim.report();
//! assert!(report.availability.availability() > 0.99);
//! ```

pub use experiments;
pub use mendosus;
pub use performability;
pub use press;
pub use simnet;
pub use transport;
pub use workload;
